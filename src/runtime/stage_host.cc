#include "runtime/stage_host.h"

#include "common/log.h"

namespace sds::runtime {

StageHost::StageHost(transport::Network& network, std::string address,
                     StageHostOptions options, const Clock& clock)
    : network_(&network),
      address_(std::move(address)),
      options_(std::move(options)),
      clock_(&clock) {}

StageHost::~StageHost() { shutdown(); }

Status StageHost::start(const transport::EndpointOptions& endpoint_options) {
  {
    MutexLock lock(mu_);
    if (started_) return Status::failed_precondition("already started");
    auto endpoint = network_->bind(address_, endpoint_options);
    if (!endpoint.is_ok()) return endpoint.status();
    endpoint_ = std::move(endpoint).value();
    started_ = true;
  }
  dispatcher_.set_fallback(
      [this](ConnId conn, wire::Frame frame) { on_frame(conn, std::move(frame)); });
  endpoint_->set_frame_handler([this](ConnId conn, wire::Frame frame) {
    dispatcher_.on_frame(conn, std::move(frame));
  });
  endpoint_->set_conn_handler([this](ConnId conn, transport::ConnEvent event) {
    dispatcher_.on_conn_event(conn, event);
    on_conn_event(conn, event);
  });
  if (options_.telemetry.enabled) {
    telemetry::TelemetryOptions opts = options_.telemetry;
    if (opts.component == "sds") opts.component = "stage_host";
    telemetry_.init(opts, endpoint_.get(), dispatcher_);
    collects_counter_ = telemetry_.registry()->counter(
        "sds_stage_collects_answered_total", {{"component", opts.component}});
  }
  // Failover re-registration must not run on the endpoint's delivery
  // thread (the registration RPC waits for a reply that the delivery
  // thread routes), so a dedicated worker drains the failover queue.
  failover_thread_ = std::thread([this] {
    while (auto task = failover_queue_.pop()) {
      const Status status = register_stage(task->first, task->second);
      if (!status.is_ok()) {
        SDS_LOG(WARN) << address_
                      << ": re-registration failed: " << status.to_string();
      }
    }
  });
  return Status::ok();
}

Status StageHost::add_stage(proto::StageInfo info, stage::DemandFn data_demand,
                            stage::DemandFn meta_demand) {
  MutexLock lock(mu_);
  for (const auto& slot : slots_) {
    if (slot->stage.info().stage_id == info.stage_id) {
      return Status::already_exists("stage " +
                                    std::to_string(info.stage_id.value()));
    }
  }
  auto slot = std::make_unique<Slot>(Slot{
      stage::VirtualStage(std::move(info), std::move(data_demand),
                          std::move(meta_demand)),
      ConnId::invalid(), 0, proto::StageMetrics{}, false});
  slots_.push_back(std::move(slot));
  return Status::ok();
}

Status StageHost::register_all() {
  std::size_t count = 0;
  {
    MutexLock lock(mu_);
    if (!started_) return Status::failed_precondition("not started");
    count = slots_.size();
  }
  for (std::size_t i = 0; i < count; ++i) {
    bool needs_registration = false;
    {
      MutexLock lock(mu_);
      needs_registration = !slots_[i]->conn.valid();
    }
    if (needs_registration) SDS_RETURN_IF_ERROR(register_stage(i, 0));
  }
  return Status::ok();
}

Status StageHost::register_stage(std::size_t index, std::size_t address_index) {
  std::string target;
  proto::StageInfo info;
  {
    MutexLock lock(mu_);
    if (options_.controller_addresses.empty()) {
      return Status::failed_precondition("no controller addresses configured");
    }
    address_index %= options_.controller_addresses.size();
    target = options_.controller_addresses[address_index];
    info = slots_[index]->stage.info();
  }

  auto conn = endpoint_->connect(target);
  if (!conn.is_ok()) return conn.status();
  const ConnId c = conn.value();
  {
    MutexLock lock(mu_);
    slots_[index]->conn = c;
    slots_[index]->address_index = address_index;
    // New registration, new receiver-side store slot: the delta chain
    // restarts with a full report.
    slots_[index]->has_report = false;
    by_conn_[c] = index;
  }

  auto ack = rpc::call<proto::RegisterAck>(
      *endpoint_, dispatcher_, c, proto::RegisterRequest{std::move(info)},
      options_.register_timeout);
  if (!ack.is_ok() || !ack->accepted) {
    {
      MutexLock lock(mu_);
      by_conn_.erase(c);
      if (slots_[index]->conn == c) slots_[index]->conn = ConnId::invalid();
    }
    endpoint_->close(c);
    return ack.is_ok() ? Status::failed_precondition("registration rejected")
                       : ack.status();
  }
  return Status::ok();
}

void StageHost::on_frame(ConnId conn, wire::Frame frame) {
  using proto::MessageType;
  MutexLock lock(mu_);
  const auto it = by_conn_.find(conn);
  if (it == by_conn_.end()) return;
  Slot& slot = *slots_[it->second];

  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kCollectRequest: {
      const auto request = proto::from_frame<proto::CollectRequest>(frame);
      if (!request.is_ok()) return;
      const Nanos begin = clock_->now();
      const auto metrics = slot.stage.collect(request->cycle_id, begin);
      ++collects_answered_;
      if (collects_counter_ != nullptr) collects_counter_->add();
      const auto reply_ctx =
          trace_hop(frame, "stage.collect", request->cycle_id, begin,
                    telemetry::SpanPhase::kCollect);
      if (options_.delta_metrics) {
        // Full refresh on the first report, on a cycle-sequence gap, and
        // periodically (staggered by stage id so refreshes spread over
        // cycles instead of bursting together).
        const bool refresh =
            !slot.has_report ||
            metrics.cycle_id != slot.last_report.cycle_id + 1 ||
            options_.delta_refresh == 0 ||
            (metrics.cycle_id + slot.stage.info().stage_id.value()) %
                    options_.delta_refresh ==
                0;
        if (refresh) {
          (void)endpoint_->send(conn, proto::to_frame(metrics, reply_ctx));
        } else {
          const proto::StageMetricsDelta delta = proto::StageMetricsDelta::make(
              slot.last_report, metrics, /*include_stage_id=*/false);
          (void)endpoint_->send(conn, proto::to_frame(delta, reply_ctx));
        }
        slot.last_report = metrics;
        slot.has_report = true;
      } else {
        (void)endpoint_->send(conn, proto::to_frame(metrics, reply_ctx));
      }
      break;
    }
    case MessageType::kEnforceBatch: {
      const auto batch = proto::from_frame<proto::EnforceBatch>(frame);
      if (!batch.is_ok()) return;
      const Nanos begin = clock_->now();
      proto::EnforceAck ack;
      ack.cycle_id = batch->cycle_id;
      for (const auto& rule : batch->rules) {
        if (rule.stage_id == slot.stage.info().stage_id &&
            slot.stage.apply(rule)) {
          ++ack.applied;
        }
      }
      const auto reply_ctx =
          trace_hop(frame, "stage.enforce", batch->cycle_id, begin,
                    telemetry::SpanPhase::kEnforce);
      (void)endpoint_->send(conn, proto::to_frame(ack, reply_ctx));
      break;
    }
    case MessageType::kHeartbeat: {
      const auto hb = proto::from_frame<proto::Heartbeat>(frame);
      if (!hb.is_ok()) return;
      proto::HeartbeatAck ack;
      ack.seq = hb->seq;
      (void)endpoint_->send(conn, proto::to_frame(ack));
      break;
    }
    default:
      SDS_LOG(DEBUG) << address_ << ": unexpected frame type " << frame.type;
  }
}

std::optional<wire::TraceContext> StageHost::trace_hop(
    const wire::Frame& frame, const char* name, std::uint64_t cycle,
    Nanos begin, telemetry::SpanPhase phase) {
  if (!frame.trace.has_value()) return std::nullopt;
  const wire::TraceContext& ctx = *frame.trace;
  const std::uint32_t track = telemetry_.track();
  telemetry::Span span;
  span.name = name;
  span.category = "component";
  span.track = track;
  span.cycle = cycle;
  span.start = begin;
  span.duration = clock_->now() - begin;
  span.trace_id = ctx.trace_id;
  span.span_id = telemetry::derive_span_id(ctx.trace_id, track, name);
  span.parent_span = ctx.parent_span;
  span.phase = phase;
  telemetry_.flight().record(span);
  if (telemetry_.tracer() != nullptr) telemetry_.tracer()->record(span);
  // Replies carry our span as the parent so the controller side can link
  // any follow-on work to this hop.
  return wire::TraceContext{ctx.trace_id, span.span_id};
}

void StageHost::on_conn_event(ConnId conn, transport::ConnEvent event) {
  if (event != transport::ConnEvent::kClosed) return;
  MutexLock lock(mu_);
  if (shutting_down_ || !options_.auto_failover) return;
  const auto it = by_conn_.find(conn);
  if (it == by_conn_.end()) return;
  const std::size_t index = it->second;
  by_conn_.erase(it);
  slots_[index]->conn = ConnId::invalid();
  SDS_LOG(INFO) << address_ << ": controller connection lost for stage "
                << slots_[index]->stage.info().stage_id
                << ", scheduling re-registration";
  failover_queue_.push({index, slots_[index]->address_index + 1});
}

Result<double> StageHost::stage_limit(StageId stage_id,
                                      stage::Dimension dim) const {
  MutexLock lock(mu_);
  for (const auto& slot : slots_) {
    if (slot->stage.info().stage_id == stage_id) {
      return slot->stage.limit(dim);
    }
  }
  return Status::not_found("stage " + std::to_string(stage_id.value()));
}

std::size_t StageHost::stage_count() const {
  MutexLock lock(mu_);
  return slots_.size();
}

std::uint64_t StageHost::collects_answered() const {
  MutexLock lock(mu_);
  return collects_answered_;
}

void StageHost::shutdown() {
  {
    MutexLock lock(mu_);
    if (!started_ || shutting_down_) return;
    shutting_down_ = true;
  }
  failover_queue_.close();
  if (failover_thread_.joinable()) failover_thread_.join();
  telemetry_.stop();
  endpoint_->shutdown();
}

}  // namespace sds::runtime
