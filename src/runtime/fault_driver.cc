#include "runtime/fault_driver.h"

#include <algorithm>
#include <string>
#include <tuple>

namespace sds::runtime {

FaultDriver::FaultDriver(Deployment& deployment, const fault::FaultPlan& plan,
                         Nanos horizon)
    : deployment_(&deployment),
      // Default dump-on-fault wiring: preserve the controller's flight
      // ring before each kill lands. set_fault_hook() overrides.
      fault_hook_([&deployment](std::string_view reason) {
        deployment.global().dump_flight(std::string(reason));
      }),
      compiled_(fault::CompiledPlan::compile(
          plan, deployment.stage_hosts().size(),
          deployment.aggregators().size(), horizon)) {
  for (std::size_t h = 0; h < compiled_.num_stages(); ++h) {
    for (const auto& outage : compiled_.stage_outages(h)) {
      events_.push_back(Event{outage.from, Kind::kKillHost, h});
      if (outage.until != fault::CompiledPlan::kNever) {
        events_.push_back(Event{outage.until, Kind::kRestartHost, h});
      }
    }
  }
  for (std::size_t a = 0; a < compiled_.num_aggregators(); ++a) {
    for (const auto& outage : compiled_.aggregator_outages(a)) {
      events_.push_back(Event{outage.from, Kind::kKillAggregator, a});
      if (outage.until != fault::CompiledPlan::kNever) {
        events_.push_back(Event{outage.until, Kind::kRestartAggregator, a});
      }
    }
  }
  std::sort(events_.begin(), events_.end(), [](const Event& x, const Event& y) {
    return std::tuple(x.at, static_cast<int>(x.kind), x.index) <
           std::tuple(y.at, static_cast<int>(y.kind), y.index);
  });
}

Status FaultDriver::advance_to(Nanos t) {
  while (applied_ < events_.size() && events_[applied_].at <= t) {
    SDS_RETURN_IF_ERROR(apply(events_[applied_]));
    ++applied_;
  }
  if (t > now_) now_ = t;
  return Status::ok();
}

Nanos FaultDriver::next_event_at() const {
  if (applied_ >= events_.size()) return fault::CompiledPlan::kNever;
  return events_[applied_].at;
}

Status FaultDriver::apply(const Event& event) {
  switch (event.kind) {
    case Kind::kKillHost:
      if (fault_hook_) {
        fault_hook_("kill-host-" + std::to_string(event.index));
      }
      return deployment_->kill_stage_host(event.index);
    case Kind::kRestartHost:
      return deployment_->restart_stage_host(event.index);
    case Kind::kKillAggregator:
      if (fault_hook_) {
        fault_hook_("kill-aggregator-" + std::to_string(event.index));
      }
      return deployment_->kill_aggregator(event.index);
    case Kind::kRestartAggregator:
      return deployment_->restart_aggregator(event.index);
  }
  return Status::ok();
}

}  // namespace sds::runtime
