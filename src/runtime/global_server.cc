#include "runtime/global_server.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/log.h"
#include "core/aggregator.h"
#include "rpc/broadcast.h"

namespace sds::runtime {

GlobalControllerServer::GlobalControllerServer(
    transport::Network& network, std::string address,
    GlobalServerOptions options,
    std::unique_ptr<policy::ControlAlgorithm> algorithm, const Clock& clock)
    : network_(&network),
      address_(std::move(address)),
      options_(options),
      clock_(&clock),
      core_(options.core, std::move(algorithm)),
      store_(core::MetricsStoreOptions{options.activity_threshold}) {}

GlobalControllerServer::~GlobalControllerServer() { shutdown(); }

Status GlobalControllerServer::start(
    const transport::EndpointOptions& endpoint_options) {
  MutexLock lock(mu_);
  if (started_) return Status::failed_precondition("already started");
  auto endpoint = network_->bind(address_, endpoint_options);
  if (!endpoint.is_ok()) return endpoint.status();
  endpoint_ = std::move(endpoint).value();
  dispatcher_.set_fallback(
      [this](ConnId conn, wire::Frame frame) { on_frame(conn, std::move(frame)); });
  endpoint_->set_frame_handler([this](ConnId conn, wire::Frame frame) {
    dispatcher_.on_frame(conn, std::move(frame));
  });
  endpoint_->set_conn_handler([this](ConnId conn, transport::ConnEvent event) {
    dispatcher_.on_conn_event(conn, event);
    if (event == transport::ConnEvent::kClosed) on_conn_closed(conn);
  });
  if (options_.telemetry.enabled) {
    if (options_.telemetry.component == "sds") {
      options_.telemetry.component = "global";
    }
    telemetry_.init(options_.telemetry, endpoint_.get(), dispatcher_,
                    [this] { return core::recent_cycles_json(stats_); });
    stats_.bind(telemetry_.registry(),
                {{"component", options_.telemetry.component}});
    phase_probe_.bind(*telemetry_.registry(),
                      {{"component", options_.telemetry.component}});
    if (telemetry_.tracer() != nullptr) {
      telemetry_.tracer()->set_track_name(telemetry_.track(),
                                          "global controller");
    }
  }
  started_ = true;
  return Status::ok();
}

void GlobalControllerServer::on_frame(ConnId conn, wire::Frame frame) {
  using proto::MessageType;
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kRegisterRequest: {
      const auto request = proto::from_frame<proto::RegisterRequest>(frame);
      if (!request.is_ok()) return;
      proto::RegisterAck ack;
      {
        MutexLock lock(mu_);
        ControllerId via = ControllerId::invalid();
        if (const auto it = aggregators_by_conn_.find(conn);
            it != aggregators_by_conn_.end()) {
          via = it->second;
        }
        // Registration is an upsert: after a failover, a stage's new
        // registration (via its new route) may arrive before the old
        // route's teardown — the latest registration wins.
        Status added = core_.registry().add({request->info, conn, via});
        if (added.code() == StatusCode::kAlreadyExists) {
          (void)core_.registry().remove(request->info.stage_id);
          added = core_.registry().add({request->info, conn, via});
          SDS_LOG(INFO) << "global: stage " << request->info.stage_id
                        << " re-registered";
        }
        ack.accepted = added.is_ok();
        ack.epoch = core_.epoch();
        if (added.is_ok()) {
          stages_by_conn_[conn].push_back(request->info.stage_id);
          store_roster_changed_ = true;
        } else {
          SDS_LOG(WARN) << "registration rejected: " << added.to_string();
        }
      }
      (void)endpoint_->send(conn, proto::to_frame(ack));
      break;
    }
    case MessageType::kHeartbeat: {
      const auto hb = proto::from_frame<proto::Heartbeat>(frame);
      if (!hb.is_ok()) return;
      {
        MutexLock lock(mu_);
        aggregators_by_conn_[conn] = hb->from;
      }
      proto::HeartbeatAck ack;
      ack.seq = hb->seq;
      (void)endpoint_->send(conn, proto::to_frame(ack));
      break;
    }
    default:
      SDS_LOG(DEBUG) << "global: unrouted frame type " << frame.type;
  }
}

void GlobalControllerServer::on_conn_closed(ConnId conn) {
  MutexLock lock(mu_);
  if (const auto it = aggregators_by_conn_.find(conn);
      it != aggregators_by_conn_.end()) {
    const ControllerId id = it->second;
    aggregators_by_conn_.erase(it);
    const auto evicted = core_.registry().evict_via(id);
    SDS_LOG(WARN) << "global: aggregator " << id << " lost, evicted "
                  << evicted.size() << " stages (they will re-register)";
    store_roster_changed_ = true;
  }
  if (const auto it = stages_by_conn_.find(conn); it != stages_by_conn_.end()) {
    for (const StageId stage : it->second) {
      // Skip stages that already re-registered over a different route.
      const core::StageRecord* record = core_.registry().find(stage);
      if (record != nullptr && record->conn == conn) {
        (void)core_.registry().remove(stage);
      }
    }
    stages_by_conn_.erase(it);
    store_roster_changed_ = true;
  }
}

void GlobalControllerServer::sync_store() {
  if (!store_roster_changed_) return;
  store_roster_changed_ = false;
  // Carry surviving slots' last reports across the rebuild: the reported
  // column is the bit-exact delta base, so re-seeding it keeps every
  // unaffected stage's delta chain anchored through roster churn.
  std::vector<proto::StageMetrics> carried;
  carried.reserve(store_.size());
  const auto last_cycles = store_.last_cycle();
  for (std::uint32_t i = 0; i < store_.size(); ++i) {
    if (last_cycles[i] > 0) carried.push_back(store_.reported(i));
  }
  store_.reset(core_.registry().size());
  core_.registry().for_each([&](const core::StageRecord& record) {
    if (!record.via.valid()) {
      (void)store_.bind(record.info.stage_id, record.info.job_id);
    }
  });
  for (const auto& m : carried) {
    (void)store_.update(m);  // drops stages that left the roster
  }
}

std::uint32_t GlobalControllerServer::store_hint(ConnId conn) const {
  const auto it = stages_by_conn_.find(conn);
  if (it == stages_by_conn_.end() || it->second.empty()) {
    return core::MetricsStore::kInvalidIndex;
  }
  // Upserts append duplicates, so "one stage per connection" means all
  // entries name the same stage; several distinct stages are ambiguous.
  const StageId stage = it->second.front();
  for (const StageId s : it->second) {
    if (s != stage) return core::MetricsStore::kInvalidIndex;
  }
  return store_.index_of(stage);
}

GlobalControllerServer::CycleTargets
GlobalControllerServer::snapshot_targets() const {
  CycleTargets targets;
  MutexLock lock(mu_);
  targets.aggregators.reserve(aggregators_by_conn_.size());
  for (const auto& [conn, id] : aggregators_by_conn_) {
    targets.aggregators.emplace_back(conn, id);
  }
  // Deterministic order for tests.
  std::sort(targets.aggregators.begin(), targets.aggregators.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  core_.registry().for_each([&](const core::StageRecord& record) {
    if (!record.via.valid()) targets.stage_conns.push_back(record.conn);
  });
  return targets;
}

Result<core::PhaseBreakdown> GlobalControllerServer::run_cycle() {
  const CycleTargets targets = snapshot_targets();
  if (targets.stage_conns.empty() && targets.aggregators.empty()) {
    return Status::failed_precondition("no stages or aggregators registered");
  }

  proto::CollectRequest request;
  std::uint64_t cycle = 0;
  {
    MutexLock lock(mu_);
    request = core_.begin_cycle();
    cycle = core_.current_cycle();
  }

  core::PhaseBreakdown breakdown;
  Stopwatch phase(*clock_);
  const bool instrumented = options_.telemetry.enabled;
  if (instrumented) phase_probe_.cycle_start();
  // Causal identity of this cycle's wave: trace = cycle id, and each
  // outbound hop carries the phase span it was caused by, so downstream
  // components stitch their spans into the same per-cycle trace.
  const std::uint64_t trace_id = cycle;
  const std::uint32_t track = telemetry_.track();

  // Store-backed compute applies on purely flat cycles: every reply is a
  // per-stage frame folded straight into the columnar store, and the
  // incremental PSFA runs over it. Hierarchical/mixed cycles keep the
  // batch pipeline (aggregated summaries never flow through the store).
  const bool store_cycle = options_.use_metrics_store &&
                           targets.aggregators.empty() &&
                           !options_.local_decisions;

  // ---- Collect -------------------------------------------------------
  auto stage_gather = dispatcher_.start_gather(
      proto::MessageType::kStageMetrics, cycle, targets.stage_conns,
      store_cycle && options_.accept_deltas
          ? std::optional(proto::MessageType::kStageMetricsDelta)
          : std::nullopt);
  std::vector<ConnId> agg_conns;
  agg_conns.reserve(targets.aggregators.size());
  for (const auto& [conn, _] : targets.aggregators) agg_conns.push_back(conn);
  auto agg_gather = dispatcher_.start_gather(
      proto::MessageType::kAggregatedMetrics, cycle, agg_conns);

  // One encode for the whole wave: stages and aggregators queue the same
  // ref-counted wire image (trace trailer included).
  const wire::SharedFrame collect_frame = proto::to_shared_frame(
      request, wire::TraceContext{
                   trace_id, telemetry::derive_span_id(trace_id, track,
                                                       "collect")});
  rpc::broadcast_shared(*endpoint_, targets.stage_conns, collect_frame);
  rpc::broadcast_shared(*endpoint_, agg_conns, collect_frame);
  const auto quorum_of = [this](std::size_t expected) -> std::size_t {
    if (expected == 0) return 0;
    const auto n = static_cast<std::size_t>(
        std::ceil(options_.collect_quorum * static_cast<double>(expected)));
    return std::clamp<std::size_t>(n, 1, expected);
  };
  const Status stage_wait = stage_gather->wait_for(
      options_.phase_timeout, quorum_of(targets.stage_conns.size()));
  // Everything after the direct-stage gather closes is aggregation tail:
  // waiting on aggregator subtree reports and decoding them.
  const Nanos stage_gather_done = phase.elapsed();
  if (instrumented) phase_probe_.mark("collect");
  const Status agg_wait = agg_gather->wait_for(options_.phase_timeout,
                                               quorum_of(agg_conns.size()));
  if (!stage_wait.is_ok() || !agg_wait.is_ok()) {
    SDS_LOG(WARN) << "global: collect incomplete in cycle " << cycle;
  }

  // Degraded-cycle accounting: every silent direct stage is stale; a
  // silent aggregator makes its whole registered subtree stale.
  std::size_t stale = stage_gather->missing();
  if (agg_gather->missing() > 0) {
    const auto bitmap = agg_gather->reply_bitmap();
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < targets.aggregators.size(); ++i) {
      if (bitmap[i]) continue;
      const ControllerId id = targets.aggregators[i].second;
      core_.registry().for_each([&](const core::StageRecord& record) {
        if (record.via == id) ++stale;
      });
    }
  }
  // Recovery accounting: a fresh collect reply from a peer we had marked
  // missing closes its outage window.
  const Nanos collect_now = clock_->now();
  const auto note_collect_outcomes = [&](const rpc::Gather& gather) {
    const auto& expected = gather.expected();
    const auto bitmap = gather.reply_bitmap();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (bitmap[i]) {
        if (const auto it = missing_since_.find(expected[i]);
            it != missing_since_.end()) {
          stats_.record_recovery(collect_now - it->second);
          missing_since_.erase(it);
        }
      } else {
        missing_since_.emplace(expected[i], collect_now);
      }
    }
  };
  note_collect_outcomes(*stage_gather);
  note_collect_outcomes(*agg_gather);

  std::vector<rpc::Gather::Reply> stage_replies = stage_gather->take_replies();
  std::vector<proto::StageMetrics> stage_metrics;
  if (!store_cycle) {
    stage_metrics.reserve(stage_replies.size());
    for (const auto& reply : stage_replies) {
      auto metrics = proto::from_frame<proto::StageMetrics>(reply.frame);
      if (metrics.is_ok()) stage_metrics.push_back(std::move(metrics).value());
    }
  }
  std::vector<proto::AggregatedMetrics> aggregated;
  for (auto& reply : agg_gather->take_replies()) {
    auto metrics = proto::from_frame<proto::AggregatedMetrics>(reply.frame);
    if (metrics.is_ok()) aggregated.push_back(std::move(metrics).value());
  }
  dispatcher_.finish(stage_gather);
  dispatcher_.finish(agg_gather);
  breakdown.collect = phase.elapsed();
  breakdown.aggregate = std::clamp(breakdown.collect - stage_gather_done,
                                   Nanos{0}, breakdown.collect);
  if (instrumented) phase_probe_.mark("aggregate");
  phase.restart();

  if ((store_cycle ? stage_replies.empty() : stage_metrics.empty()) &&
      aggregated.empty()) {
    return Status::unavailable("no metrics collected in cycle " +
                               std::to_string(cycle));
  }

  if (options_.local_decisions) {
    if (!stage_metrics.empty()) {
      return Status::failed_precondition(
          "local-decision mode requires all stages behind aggregators");
    }
    return run_lease_phase(cycle, aggregated, targets, breakdown, phase);
  }

  // ---- Compute -------------------------------------------------------
  core::ComputeResult result;
  std::size_t delta_rejected = 0;
  {
    MutexLock lock(mu_);
    if (store_cycle) {
      sync_store();
      for (const auto& reply : stage_replies) {
        if (reply.frame.type ==
            static_cast<std::uint16_t>(
                proto::MessageType::kStageMetricsDelta)) {
          const auto delta =
              proto::from_frame<proto::StageMetricsDelta>(reply.frame);
          // A rejected delta (unknown slot, duplicate, broken base chain)
          // leaves the slot's previous report in force; the stage counts
          // stale this cycle and its host's periodic full refresh
          // re-anchors the chain.
          if (!delta.is_ok() ||
              store_.apply_delta(*delta, store_hint(reply.conn)) !=
                  core::DeltaStatus::kApplied) {
            ++delta_rejected;
          }
        } else {
          const auto metrics =
              proto::from_frame<proto::StageMetrics>(reply.frame);
          if (metrics.is_ok()) (void)store_.update(*metrics);
        }
      }
      result = core_.compute_from_store(store_, options_.psfa_full_recompute);
    } else if (aggregated.empty()) {
      result = core_.compute(std::span<const proto::StageMetrics>(
          stage_metrics.data(), stage_metrics.size()));
    } else {
      // Mixed/hierarchical: fold any direct stage metrics into a synthetic
      // summary so one compute path covers the whole roster.
      if (!stage_metrics.empty()) {
        core::AggregatorCore folder(
            core::AggregatorOptions{ControllerId::invalid(), true});
        aggregated.push_back(folder.aggregate(cycle, stage_metrics));
      }
      result = core_.compute(std::span<const proto::AggregatedMetrics>(
          aggregated.data(), aggregated.size()));
    }
  }
  // Deltas dropped by the store never updated their stage's metrics this
  // cycle — degraded-cycle accounting treats them like silent stages.
  stale += delta_rejected;
  breakdown.compute = phase.elapsed();
  if (instrumented) phase_probe_.mark("compute");
  phase.restart();

  // ---- Enforce -------------------------------------------------------
  std::unordered_map<ControllerId, proto::EnforceBatch> batches;
  {
    MutexLock lock(mu_);
    batches = core_.group_rules(result);
  }

  // Build every delivery first so the ack gather can be registered
  // BEFORE the first send — otherwise a fast ack could arrive before the
  // gather exists and be dropped.
  std::vector<std::pair<ConnId, proto::EnforceBatch>> deliveries;
  if (const auto it = batches.find(ControllerId::invalid());
      it != batches.end()) {
    // Direct stages: one batch per stage connection.
    std::unordered_map<ConnId, proto::EnforceBatch> per_conn;
    {
      MutexLock lock(mu_);
      for (const auto& rule : it->second.rules) {
        const core::StageRecord* record = core_.registry().find(rule.stage_id);
        if (record == nullptr) continue;
        auto& batch = per_conn[record->conn];
        batch.cycle_id = cycle;
        batch.rules.push_back(rule);
      }
    }
    for (auto& [conn, batch] : per_conn) {
      deliveries.emplace_back(conn, std::move(batch));
    }
  }
  // Aggregators: the whole subtree batch on the aggregator connection.
  for (const auto& [conn, id] : targets.aggregators) {
    const auto it = batches.find(id);
    proto::EnforceBatch batch;
    batch.cycle_id = cycle;
    if (it != batches.end()) batch = it->second;
    deliveries.emplace_back(conn, std::move(batch));
  }

  std::size_t enforce_missing = 0;
  if (!deliveries.empty()) {
    std::vector<ConnId> ack_conns;
    ack_conns.reserve(deliveries.size());
    for (const auto& [conn, _] : deliveries) ack_conns.push_back(conn);
    auto ack_gather = dispatcher_.start_gather(proto::MessageType::kEnforceAck,
                                               cycle, ack_conns);
    const wire::TraceContext enforce_ctx{
        trace_id, telemetry::derive_span_id(trace_id, track, "disseminate")};
    for (const auto& [conn, batch] : deliveries) {
      (void)endpoint_->send(conn, proto::to_frame(batch, enforce_ctx));
    }
    // Dissemination head of the enforce phase: rule batches encoded and
    // queued; the rest of the phase is the ack wait.
    breakdown.disseminate = phase.elapsed();
    if (instrumented) phase_probe_.mark("disseminate");
    const Status ack_wait = ack_gather->wait_for(options_.phase_timeout,
                                                 quorum_of(ack_conns.size()));
    if (!ack_wait.is_ok()) {
      SDS_LOG(WARN) << "global: enforce incomplete in cycle " << cycle;
    }
    enforce_missing = ack_gather->missing();
    dispatcher_.finish(ack_gather);
  }
  breakdown.enforce = phase.elapsed();
  if (instrumented) phase_probe_.mark("enforce");

  const bool degraded = stale > 0 || enforce_missing > 0;
  if (degraded) stats_.record_degraded(stale);
  stats_.record(cycle, breakdown, degraded, stale);
  trace_cycle(cycle, breakdown);
  if (degraded && !flight_dumped_) {
    // First degraded cycle: preserve the span ring before it wraps.
    flight_dumped_ = true;
    telemetry_.dump_flight("degraded-cycle");
  }
  return breakdown;
}

void GlobalControllerServer::trace_cycle(std::uint64_t cycle,
                                         const core::PhaseBreakdown& breakdown) {
  telemetry::SpanTracer* tracer = telemetry_.tracer();
  telemetry::FlightRecorder& flight = telemetry_.flight();
  const std::uint32_t track = telemetry_.track();
  const Nanos start = clock_->now() - breakdown.total();
  const std::uint64_t root_id = telemetry::derive_span_id(cycle, track, "cycle");
  const std::uint64_t collect_id =
      telemetry::derive_span_id(cycle, track, "collect");
  const std::uint64_t enforce_id =
      telemetry::derive_span_id(cycle, track, "enforce");
  const auto make = [&](const char* name, Nanos at, Nanos duration,
                        std::uint64_t parent, telemetry::SpanPhase phase) {
    telemetry::Span span;
    span.name = name;
    span.category = "cycle";
    span.track = track;
    span.cycle = cycle;
    span.start = at;
    span.duration = duration;
    span.trace_id = cycle;
    span.span_id = telemetry::derive_span_id(cycle, track, name);
    span.parent_span = parent;
    span.phase = phase;
    return span;
  };
  const auto emit = [&](telemetry::Span span) {
    flight.record(span);
    if (tracer != nullptr) tracer->record(std::move(span));
  };
  using telemetry::SpanPhase;
  emit(make("cycle", start, breakdown.total(), 0, SpanPhase::kNone));
  emit(make("collect", start, breakdown.collect, root_id, SpanPhase::kCollect));
  emit(make("aggregate", start + breakdown.collect - breakdown.aggregate,
            breakdown.aggregate, collect_id, SpanPhase::kAggregate));
  emit(make("compute", start + breakdown.collect, breakdown.compute, root_id,
            SpanPhase::kCompute));
  emit(make("disseminate", start + breakdown.collect + breakdown.compute,
            breakdown.disseminate, enforce_id, SpanPhase::kDisseminate));
  emit(make("enforce", start + breakdown.collect + breakdown.compute,
            breakdown.enforce, root_id, SpanPhase::kEnforce));
}

Result<core::PhaseBreakdown> GlobalControllerServer::run_lease_phase(
    std::uint64_t cycle,
    const std::vector<proto::AggregatedMetrics>& aggregated,
    const CycleTargets& targets, core::PhaseBreakdown breakdown,
    Stopwatch& phase) {
  // ---- Compute: demand-proportional budget leases --------------------
  double total_data = 0;
  double total_meta = 0;
  for (const auto& report : aggregated) {
    for (const auto& job : report.jobs) {
      total_data += job.data_iops;
      total_meta += job.meta_iops;
    }
  }
  core::Budgets budgets;
  {
    MutexLock lock(mu_);
    budgets = core_.policies().budgets();
  }
  const std::uint64_t valid_until = static_cast<std::uint64_t>(
      (clock_->now() + options_.lease_validity).count());

  std::unordered_map<ControllerId, proto::BudgetLease> leases;
  const double fallback = aggregated.empty() ? 1.0 : 1.0 / aggregated.size();
  for (const auto& report : aggregated) {
    double agg_data = 0;
    double agg_meta = 0;
    for (const auto& job : report.jobs) {
      agg_data += job.data_iops;
      agg_meta += job.meta_iops;
    }
    proto::BudgetLease lease;
    lease.cycle_id = cycle;
    lease.data_budget = budgets.data_iops *
                        (total_data > 0 ? agg_data / total_data : fallback);
    lease.meta_budget = budgets.meta_iops *
                        (total_meta > 0 ? agg_meta / total_meta : fallback);
    lease.valid_until_ns = valid_until;
    leases[report.from] = lease;
  }
  breakdown.compute = phase.elapsed();
  phase.restart();

  // ---- Enforce: grant leases, await merged acks ------------------------
  std::vector<ConnId> ack_conns;
  std::vector<std::pair<ConnId, proto::BudgetLease>> deliveries;
  for (const auto& [conn, id] : targets.aggregators) {
    const auto it = leases.find(id);
    if (it == leases.end()) continue;  // no report this cycle: skip
    ack_conns.push_back(conn);
    deliveries.emplace_back(conn, it->second);
  }
  if (!deliveries.empty()) {
    auto gather = dispatcher_.start_gather(proto::MessageType::kEnforceAck,
                                           cycle, ack_conns);
    for (const auto& [conn, lease] : deliveries) {
      (void)endpoint_->send(conn, proto::to_frame(lease));
    }
    const Status wait = gather->wait_for(options_.phase_timeout);
    if (!wait.is_ok()) {
      SDS_LOG(WARN) << "global: lease enforcement incomplete in cycle "
                    << cycle;
    }
    dispatcher_.finish(gather);
  }
  breakdown.enforce = phase.elapsed();
  stats_.record(cycle, breakdown, false, 0);
  trace_cycle(cycle, breakdown);
  return breakdown;
}

Result<std::vector<GlobalControllerServer::DeadPeer>>
GlobalControllerServer::probe_liveness(Nanos timeout) {
  const CycleTargets targets = snapshot_targets();
  std::uint64_t seq = 0;
  {
    MutexLock lock(mu_);
    seq = ++heartbeat_seq_;
  }

  std::vector<ConnId> probe_conns = targets.stage_conns;
  for (const auto& [conn, _] : targets.aggregators) probe_conns.push_back(conn);
  if (probe_conns.empty()) return std::vector<DeadPeer>{};

  // HeartbeatAck's body starts with the varint seq, so the gather can
  // correlate on it like a cycle id.
  auto gather = dispatcher_.start_gather(proto::MessageType::kHeartbeatAck,
                                         seq, probe_conns);
  proto::Heartbeat heartbeat;
  heartbeat.from = ControllerId::invalid();  // "the global controller"
  heartbeat.seq = seq;
  rpc::broadcast(*endpoint_, probe_conns, heartbeat);

  (void)gather->wait_for(timeout);
  std::unordered_set<ConnId> answered;
  for (const auto& reply : gather->take_replies()) answered.insert(reply.conn);
  dispatcher_.finish(gather);

  std::vector<DeadPeer> dead;
  for (const auto& [conn, id] : targets.aggregators) {
    if (!answered.contains(conn)) dead.push_back({conn, id});
  }
  for (const ConnId conn : targets.stage_conns) {
    if (!answered.contains(conn)) dead.push_back({conn, ControllerId::invalid()});
  }
  return dead;
}

void GlobalControllerServer::evict(const DeadPeer& peer) {
  on_conn_closed(peer.conn);  // registry cleanup, as if the conn dropped
  endpoint_->close(peer.conn);
}

Status GlobalControllerServer::run_cycles(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    auto cycle = run_cycle();
    if (!cycle.is_ok()) return cycle.status();
  }
  return Status::ok();
}

void GlobalControllerServer::set_job_weight(JobId job, double weight) {
  MutexLock lock(mu_);
  core_.policies().set_weight(job, weight);
}

void GlobalControllerServer::set_budgets(core::Budgets budgets) {
  MutexLock lock(mu_);
  core_.policies().set_budgets(budgets);
}

std::size_t GlobalControllerServer::registered_stages() const {
  MutexLock lock(mu_);
  return core_.registry().size();
}

std::size_t GlobalControllerServer::known_aggregators() const {
  MutexLock lock(mu_);
  return aggregators_by_conn_.size();
}

std::uint32_t GlobalControllerServer::epoch() const {
  MutexLock lock(mu_);
  return core_.epoch();
}

void GlobalControllerServer::advance_epoch() {
  MutexLock lock(mu_);
  core_.advance_epoch();
}

void GlobalControllerServer::shutdown() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
  }
  telemetry_.stop();
  endpoint_->shutdown();
}

}  // namespace sds::runtime
