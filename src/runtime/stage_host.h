// StageHost — live data-plane process hosting one or more virtual stages
// (the paper runs 50 per compute node). Each stage keeps its OWN
// connection to its controller, exactly like the paper's deployment, so
// controller-side connection counts are realistic.
//
// Reactive: collect requests and enforce batches are answered inline on
// the endpoint's delivery thread. Supports failover: when a stage's
// controller connection drops, the host re-dials the next address in its
// controller list and re-registers (paper §VI dependability).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/queue.h"

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "rpc/gather.h"
#include "runtime/server_telemetry.h"
#include "stage/virtual_stage.h"
#include "transport/transport.h"

namespace sds::runtime {

struct StageHostOptions {
  /// Addresses of controllers to register with, in failover order.
  std::vector<std::string> controller_addresses;
  Nanos register_timeout = seconds(5);
  /// Redial + re-register when a controller connection closes.
  bool auto_failover = true;
  /// Delta-encoded collect replies: after a stage's first report on its
  /// current registration, answer collects with a StageMetricsDelta
  /// carrying only the fields that changed (no stage id — the controller
  /// resolves the per-stage connection to the store slot). A full
  /// StageMetrics refresh goes out every `delta_refresh` collects
  /// (staggered by stage id), after a re-registration, and whenever the
  /// collect cycle sequence gapped — a skipped cycle often means the
  /// controller also lost the previous reply, which would break the
  /// delta chain (it validates the base cycle and drops mismatches).
  bool delta_metrics = false;
  std::size_t delta_refresh = 64;
  /// Observability: transport counters and the collects-answered counter
  /// register into one MetricsRegistry (shared when `telemetry.registry`
  /// is set); exported when `out_dir` is configured.
  telemetry::TelemetryOptions telemetry = {};
};

class StageHost {
 public:
  StageHost(transport::Network& network, std::string address,
            StageHostOptions options, const Clock& clock = SystemClock::instance());
  ~StageHost();

  StageHost(const StageHost&) = delete;
  StageHost& operator=(const StageHost&) = delete;

  /// Bind the endpoint and install handlers.
  Status start(const transport::EndpointOptions& endpoint_options = {});

  /// Add a virtual stage (before or after start).
  Status add_stage(proto::StageInfo info, stage::DemandFn data_demand,
                   stage::DemandFn meta_demand);

  /// Dial the primary controller and register every stage.
  Status register_all();

  /// The stage's currently enforced limit (test introspection).
  [[nodiscard]] Result<double> stage_limit(StageId stage_id,
                                           stage::Dimension dim) const;

  [[nodiscard]] std::size_t stage_count() const;
  [[nodiscard]] transport::Endpoint* endpoint() { return endpoint_.get(); }

  /// Total collect requests answered (liveness introspection).
  [[nodiscard]] std::uint64_t collects_answered() const;

  /// Telemetry registry (null unless options.telemetry.enabled).
  [[nodiscard]] telemetry::MetricsRegistry* metrics() {
    return telemetry_.registry();
  }
  /// Always-on span ring (stage-side hop spans land here).
  [[nodiscard]] telemetry::FlightRecorder& flight() {
    return telemetry_.flight();
  }

  void shutdown();

 private:
  void on_frame(ConnId conn, wire::Frame frame);
  /// Record a hop span for a traced inbound frame and return the trace
  /// context to echo on the reply (nullopt when the frame was untraced).
  std::optional<wire::TraceContext> trace_hop(const wire::Frame& frame,
                                              const char* name,
                                              std::uint64_t cycle, Nanos begin,
                                              telemetry::SpanPhase phase);
  void on_conn_event(ConnId conn, transport::ConnEvent event);
  Status register_stage(std::size_t index, std::size_t address_index);

  transport::Network* network_;
  const std::string address_;
  StageHostOptions options_;
  const Clock* clock_;

  std::unique_ptr<transport::Endpoint> endpoint_;
  rpc::Dispatcher dispatcher_;
  ServerTelemetry telemetry_;
  telemetry::Counter* collects_counter_ = nullptr;

  mutable Mutex mu_{LockRank::kRuntimeServer};
  struct Slot {
    stage::VirtualStage stage;
    ConnId conn;                    // connection to the controller
    std::size_t address_index = 0;  // which controller it registered with
    /// Delta-chain base: the last report sent over the current
    /// registration (delta_metrics mode; invalidated on re-register).
    proto::StageMetrics last_report;
    bool has_report = false;
  };
  std::vector<std::unique_ptr<Slot>> slots_ SDS_GUARDED_BY(mu_);
  std::unordered_map<ConnId, std::size_t> by_conn_ SDS_GUARDED_BY(mu_);
  std::uint64_t collects_answered_ SDS_GUARDED_BY(mu_) = 0;
  bool started_ SDS_GUARDED_BY(mu_) = false;
  bool shutting_down_ SDS_GUARDED_BY(mu_) = false;

  /// (slot index, next controller address index) re-registration tasks.
  Queue<std::pair<std::size_t, std::size_t>> failover_queue_;
  std::thread failover_thread_;
};

}  // namespace sds::runtime
