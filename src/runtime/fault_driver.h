// FaultDriver — replays a compiled FaultPlan's crash/restart timeline
// against a live Deployment.
//
// The simulator injects outages by consulting the CompiledPlan at event
// time; the runtime side replays the *same* timeline as explicit
// kill/restart calls on the deployment. The driver keeps a virtual
// clock that only the caller advances: `advance_to(t)` applies, in
// timestamp order, every transition scheduled at or before `t` and then
// returns. Nothing here waits on wall time, so tests step through a
// scenario as fast as the control plane reacts, and the sequence of
// transitions is identical to the simulator's for the same plan — the
// basis of the sim-vs-runtime cross-validation test.
//
// Entity mapping: a plan's `stage` index addresses a *stage host* in the
// runtime (the unit that can actually crash). Deployments used for
// cross-validation set stages_per_host = 1 so the two sides agree
// exactly; `aggregator` indices map one-to-one either way.
#pragma once

#include <cstddef>
#include <functional>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "fault/plan.h"
#include "runtime/deployment.h"

namespace sds::runtime {

class FaultDriver {
 public:
  /// Compile `plan` against the deployment's topology (hosts count as
  /// stages) over [0, horizon) of virtual time.
  FaultDriver(Deployment& deployment, const fault::FaultPlan& plan,
              Nanos horizon = seconds(60));

  FaultDriver(const FaultDriver&) = delete;
  FaultDriver& operator=(const FaultDriver&) = delete;

  /// Apply every kill/restart transition scheduled in (now, t], in
  /// timestamp order, then set the virtual clock to `t`. Returns the
  /// first error (remaining transitions at the same call are skipped).
  Status advance_to(Nanos t);

  /// Virtual time of the next pending transition; CompiledPlan::kNever
  /// when the timeline is exhausted.
  [[nodiscard]] Nanos next_event_at() const;

  [[nodiscard]] std::size_t events_applied() const { return applied_; }
  [[nodiscard]] std::size_t events_total() const { return events_.size(); }
  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] const fault::CompiledPlan& compiled() const {
    return compiled_;
  }

  /// Called on every kill transition with a short description (e.g.
  /// "kill-host-3") BEFORE the kill is applied — the flight-recorder dump
  /// hook: wire it to GlobalControllerServer::dump_flight so the span
  /// ring is preserved while the spans leading up to the fault are still
  /// in it.
  void set_fault_hook(std::function<void(std::string_view)> hook) {
    fault_hook_ = std::move(hook);
  }

 private:
  enum class Kind : std::uint8_t {
    kKillHost,
    kRestartHost,
    kKillAggregator,
    kRestartAggregator,
  };

  struct Event {
    Nanos at{0};
    Kind kind = Kind::kKillHost;
    std::size_t index = 0;
  };

  Status apply(const Event& event);

  Deployment* deployment_;
  std::function<void(std::string_view)> fault_hook_;
  fault::CompiledPlan compiled_;
  std::vector<Event> events_;  // sorted by (at, kind, index)
  std::size_t applied_ = 0;
  Nanos now_{0};
};

}  // namespace sds::runtime
