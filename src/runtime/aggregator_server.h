// AggregatorServer — live middle-tier controller of the hierarchical
// design. Binds an endpoint for its stages, dials the global controller
// upstream, introduces itself with a Heartbeat carrying its ControllerId,
// and then serves the global controller's control cycles:
//
//   CollectRequest (from global)  → scatter to stages → gather
//     StageMetrics → pre-aggregate (Cheferd-style) → AggregatedMetrics up
//   EnforceBatch (from global)    → route one single-rule batch per stage
//     → gather EnforceAcks → merged EnforceAck up
//
// Stage registrations are accepted locally (immediate ack to the stage)
// and forwarded upstream so the global controller learns the roster.
// Cycle work runs on a dedicated worker thread: the endpoint's delivery
// thread must stay free to route gather replies.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/queue.h"
#include "common/status.h"
#include "core/aggregator.h"
#include "rpc/gather.h"
#include "runtime/server_telemetry.h"
#include "transport/transport.h"

namespace sds::runtime {

struct AggregatorServerOptions {
  ControllerId id;
  std::string upstream_address;
  Nanos phase_timeout = seconds(5);
  /// Observability: transport + gather instruments and the cycles-served
  /// counter register into one MetricsRegistry (shared when
  /// `telemetry.registry` is set); exported when `out_dir` is configured.
  telemetry::TelemetryOptions telemetry = {};
};

class AggregatorServer {
 public:
  AggregatorServer(transport::Network& network, std::string address,
                   AggregatorServerOptions options,
                   const Clock& clock = SystemClock::instance());
  ~AggregatorServer();

  AggregatorServer(const AggregatorServer&) = delete;
  AggregatorServer& operator=(const AggregatorServer&) = delete;

  /// Bind, dial upstream, introduce this aggregator to the global
  /// controller.
  Status start(const transport::EndpointOptions& endpoint_options = {});

  [[nodiscard]] std::size_t registered_stages() const;
  /// Bound address (resolved — actual port when bound to port 0).
  [[nodiscard]] const std::string& address() const {
    return endpoint_ ? endpoint_->address() : address_;
  }
  [[nodiscard]] ControllerId id() const { return options_.id; }
  [[nodiscard]] transport::Endpoint* endpoint() { return endpoint_.get(); }

  /// Control cycles relayed downward so far (introspection).
  [[nodiscard]] std::uint64_t cycles_served() const;

  /// Telemetry registry (null unless options.telemetry.enabled).
  [[nodiscard]] telemetry::MetricsRegistry* metrics() {
    return telemetry_.registry();
  }
  /// Always-on span ring (aggregator hop spans land here).
  [[nodiscard]] telemetry::FlightRecorder& flight() {
    return telemetry_.flight();
  }

  void shutdown();

 private:
  void on_frame(ConnId conn, wire::Frame frame);
  void on_conn_closed(ConnId conn);
  void serve_collect(proto::CollectRequest request,
                     std::optional<wire::TraceContext> ctx);
  void serve_enforce(proto::EnforceBatch batch,
                     std::optional<wire::TraceContext> ctx);
  /// Local-decision mode (paper §VI): run PSFA over the subtree within
  /// the leased budgets and enforce the result.
  void serve_lease(proto::BudgetLease lease,
                   std::optional<wire::TraceContext> ctx);
  /// Push one single-rule batch per owned stage; gather acks; send the
  /// merged ack upstream.
  void enforce_rules(std::uint64_t cycle_id,
                     const std::vector<proto::Rule>& rules,
                     const std::optional<wire::TraceContext>& ctx);
  /// Derive this hop's own context (our span as the parent of downstream
  /// work); nullopt when the inbound frame carried no trace.
  [[nodiscard]] std::optional<wire::TraceContext> child_context(
      const std::optional<wire::TraceContext>& ctx, const char* name) const;
  /// Record the hop span for a traced serve (flight ring + tracer).
  void record_hop(const std::optional<wire::TraceContext>& ctx,
                  const char* name, std::uint64_t cycle, Nanos begin,
                  telemetry::SpanPhase phase);

  transport::Network* network_;
  const std::string address_;
  AggregatorServerOptions options_;
  const Clock* clock_;

  std::unique_ptr<transport::Endpoint> endpoint_;
  rpc::Dispatcher dispatcher_;
  ServerTelemetry telemetry_;
  telemetry::Counter* cycles_counter_ = nullptr;

  mutable Mutex mu_{LockRank::kRuntimeServer};
  core::AggregatorCore core_ SDS_GUARDED_BY(mu_);
  std::unordered_map<ConnId, std::vector<StageId>> stages_by_conn_
      SDS_GUARDED_BY(mu_);
  ConnId upstream_ SDS_GUARDED_BY(mu_) = ConnId::invalid();
  std::uint64_t cycles_served_ SDS_GUARDED_BY(mu_) = 0;
  /// Most recent collect results, kept for local-decision leases.
  std::vector<proto::StageMetrics> last_collected_ SDS_GUARDED_BY(mu_);
  std::uint64_t last_collect_cycle_ SDS_GUARDED_BY(mu_) = 0;
  bool started_ SDS_GUARDED_BY(mu_) = false;

  Queue<std::function<void()>> work_;
  std::thread worker_;
};

}  // namespace sds::runtime
