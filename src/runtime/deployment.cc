#include "runtime/deployment.h"

#include <thread>

#include "workload/generators.h"

namespace sds::runtime {

Result<std::unique_ptr<Deployment>> Deployment::create(
    transport::Network& network, const DeploymentOptions& options) {
  auto deployment = std::unique_ptr<Deployment>(new Deployment());

  GlobalServerOptions global_options;
  global_options.core.budgets = options.budgets;
  global_options.phase_timeout = options.phase_timeout;
  global_options.local_decisions = options.local_decisions;
  if (options.local_decisions && options.num_aggregators == 0) {
    return Status::invalid_argument(
        "local_decisions requires a hierarchical topology");
  }
  deployment->global_ = std::make_unique<GlobalControllerServer>(
      network, "global", global_options);
  SDS_RETURN_IF_ERROR(deployment->global_->start(
      transport::EndpointOptions{options.max_connections, 0}));

  for (std::size_t a = 0; a < options.num_aggregators; ++a) {
    AggregatorServerOptions agg_options;
    agg_options.id = ControllerId{static_cast<std::uint32_t>(a)};
    agg_options.upstream_address = "global";
    agg_options.phase_timeout = options.phase_timeout;
    auto agg = std::make_unique<AggregatorServer>(
        network, "agg" + std::to_string(a), agg_options);
    SDS_RETURN_IF_ERROR(
        agg->start(transport::EndpointOptions{options.max_connections, 0}));
    deployment->aggregators_.push_back(std::move(agg));
  }

  const std::size_t num_hosts =
      (options.num_stages + options.stages_per_host - 1) /
      std::max<std::size_t>(1, options.stages_per_host);
  for (std::size_t h = 0; h < num_hosts; ++h) {
    StageHostOptions host_options;
    if (options.num_aggregators == 0) {
      host_options.controller_addresses = {"global"};
    } else {
      // Stages pick their aggregator round-robin by host; failover walks
      // the rest of the list.
      for (std::size_t a = 0; a < options.num_aggregators; ++a) {
        const std::size_t pick = (h + a) % options.num_aggregators;
        host_options.controller_addresses.push_back("agg" +
                                                    std::to_string(pick));
      }
    }
    auto host = std::make_unique<StageHost>(
        network, "host" + std::to_string(h), host_options);
    SDS_RETURN_IF_ERROR(host->start());
    deployment->stage_hosts_.push_back(std::move(host));
  }

  for (std::size_t i = 0; i < options.num_stages; ++i) {
    proto::StageInfo info;
    info.stage_id = StageId{static_cast<std::uint32_t>(i)};
    info.node_id = NodeId{static_cast<std::uint32_t>(i)};
    info.job_id = JobId{static_cast<std::uint32_t>(
        i / std::max<std::size_t>(1, options.stages_per_job))};
    info.hostname = "host" + std::to_string(i / options.stages_per_host);
    stage::DemandFn data;
    stage::DemandFn meta;
    if (options.demand_factory) {
      data = options.demand_factory(info.stage_id, stage::Dimension::kData);
      meta = options.demand_factory(info.stage_id, stage::Dimension::kMeta);
    } else {
      data = workload::constant(options.data_demand);
      meta = workload::constant(options.meta_demand);
    }
    SDS_RETURN_IF_ERROR(
        deployment->stage_hosts_[i / options.stages_per_host]->add_stage(
            info, std::move(data), std::move(meta)));
  }

  for (auto& host : deployment->stage_hosts_) {
    SDS_RETURN_IF_ERROR(host->register_all());
  }

  // Wait for forwarded registrations to land at the global controller.
  const Nanos deadline = SystemClock::instance().now() + seconds(10);
  while (deployment->global_->registered_stages() < options.num_stages) {
    if (SystemClock::instance().now() > deadline) {
      return Status::deadline_exceeded(
          "global controller saw only " +
          std::to_string(deployment->global_->registered_stages()) + "/" +
          std::to_string(options.num_stages) + " registrations");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return deployment;
}

Deployment::~Deployment() { shutdown(); }

Result<double> Deployment::stage_limit(StageId stage,
                                       stage::Dimension dim) const {
  for (const auto& host : stage_hosts_) {
    auto limit = host->stage_limit(stage, dim);
    if (limit.is_ok()) return limit;
  }
  return Status::not_found("stage " + std::to_string(stage.value()));
}

void Deployment::shutdown() {
  // Stages first (they would otherwise try to fail over), then the
  // middle tier, then the global controller.
  for (auto& host : stage_hosts_) host->shutdown();
  for (auto& agg : aggregators_) agg->shutdown();
  if (global_) global_->shutdown();
}

}  // namespace sds::runtime
