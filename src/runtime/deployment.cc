#include "runtime/deployment.h"

#include <algorithm>
#include <thread>

#include "workload/generators.h"

namespace sds::runtime {

Result<std::unique_ptr<Deployment>> Deployment::create(
    transport::Network& network, const DeploymentOptions& options) {
  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->network_ = &network;
  deployment->options_ = options;

  GlobalServerOptions global_options;
  global_options.core.budgets = options.budgets;
  global_options.phase_timeout = options.phase_timeout;
  global_options.collect_quorum = options.collect_quorum;
  global_options.local_decisions = options.local_decisions;
  global_options.use_metrics_store = options.use_metrics_store;
  global_options.psfa_full_recompute = options.psfa_full_recompute;
  if (options.local_decisions && options.num_aggregators == 0) {
    return Status::invalid_argument(
        "local_decisions requires a hierarchical topology");
  }
  if (options.delta_metrics && options.num_aggregators > 0) {
    // Aggregators fold full StageMetrics frames; they have no delta
    // reassembly state, so delta collect frames are flat-only for now.
    return Status::invalid_argument(
        "delta_metrics requires a flat topology");
  }
  if (options.delta_metrics && options.delta_refresh == 0) {
    return Status::invalid_argument("delta_metrics requires delta_refresh > 0");
  }
  deployment->global_ = std::make_unique<GlobalControllerServer>(
      network, "global", global_options);
  SDS_RETURN_IF_ERROR(deployment->global_->start(
      transport::EndpointOptions{options.max_connections, 0}));

  for (std::size_t a = 0; a < options.num_aggregators; ++a) {
    auto agg = deployment->make_aggregator(a);
    if (!agg.is_ok()) return agg.status();
    deployment->aggregators_.push_back(std::move(agg).value());
  }

  const std::size_t num_hosts =
      (options.num_stages + options.stages_per_host - 1) /
      std::max<std::size_t>(1, options.stages_per_host);
  for (std::size_t h = 0; h < num_hosts; ++h) {
    auto host = deployment->make_stage_host(h);
    if (!host.is_ok()) return host.status();
    deployment->stage_hosts_.push_back(std::move(host).value());
  }

  for (auto& host : deployment->stage_hosts_) {
    SDS_RETURN_IF_ERROR(host->register_all());
  }

  // Wait for forwarded registrations to land at the global controller.
  const Nanos deadline = SystemClock::instance().now() + seconds(10);
  while (deployment->global_->registered_stages() < options.num_stages) {
    if (SystemClock::instance().now() > deadline) {
      return Status::deadline_exceeded(
          "global controller saw only " +
          std::to_string(deployment->global_->registered_stages()) + "/" +
          std::to_string(options.num_stages) + " registrations");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return deployment;
}

Deployment::~Deployment() { shutdown(); }

Result<std::unique_ptr<AggregatorServer>> Deployment::make_aggregator(
    std::size_t index) const {
  AggregatorServerOptions agg_options;
  agg_options.id = ControllerId{static_cast<std::uint32_t>(index)};
  agg_options.upstream_address = "global";
  agg_options.phase_timeout = options_.phase_timeout;
  auto agg = std::make_unique<AggregatorServer>(
      *network_, "agg" + std::to_string(index), agg_options);
  SDS_RETURN_IF_ERROR(
      agg->start(transport::EndpointOptions{options_.max_connections, 0}));
  return agg;
}

Result<std::unique_ptr<StageHost>> Deployment::make_stage_host(
    std::size_t index) const {
  StageHostOptions host_options;
  host_options.delta_metrics = options_.delta_metrics;
  host_options.delta_refresh = options_.delta_refresh;
  if (options_.num_aggregators == 0) {
    host_options.controller_addresses = {"global"};
  } else {
    // Stages pick their aggregator round-robin by host; failover walks
    // the rest of the list.
    for (std::size_t a = 0; a < options_.num_aggregators; ++a) {
      const std::size_t pick = (index + a) % options_.num_aggregators;
      host_options.controller_addresses.push_back("agg" +
                                                  std::to_string(pick));
    }
  }
  auto host = std::make_unique<StageHost>(
      *network_, "host" + std::to_string(index), host_options);
  SDS_RETURN_IF_ERROR(host->start());

  const std::size_t first = index * options_.stages_per_host;
  const std::size_t last =
      std::min(options_.num_stages, first + options_.stages_per_host);
  for (std::size_t i = first; i < last; ++i) {
    proto::StageInfo info;
    info.stage_id = StageId{static_cast<std::uint32_t>(i)};
    info.node_id = NodeId{static_cast<std::uint32_t>(i)};
    info.job_id = JobId{static_cast<std::uint32_t>(
        i / std::max<std::size_t>(1, options_.stages_per_job))};
    info.hostname = "host" + std::to_string(index);
    stage::DemandFn data;
    stage::DemandFn meta;
    if (options_.demand_factory) {
      data = options_.demand_factory(info.stage_id, stage::Dimension::kData);
      meta = options_.demand_factory(info.stage_id, stage::Dimension::kMeta);
    } else {
      data = workload::constant(options_.data_demand);
      meta = workload::constant(options_.meta_demand);
    }
    SDS_RETURN_IF_ERROR(host->add_stage(info, std::move(data), std::move(meta)));
  }
  return host;
}

Status Deployment::kill_aggregator(std::size_t index) {
  if (index >= aggregators_.size()) {
    return Status::out_of_range("aggregator " + std::to_string(index));
  }
  aggregators_[index]->shutdown();
  return Status::ok();
}

Status Deployment::restart_aggregator(std::size_t index) {
  if (index >= aggregators_.size()) {
    return Status::out_of_range("aggregator " + std::to_string(index));
  }
  auto agg = make_aggregator(index);
  if (!agg.is_ok()) return agg.status();
  aggregators_[index] = std::move(agg).value();
  return Status::ok();
}

Status Deployment::kill_stage_host(std::size_t index) {
  if (index >= stage_hosts_.size()) {
    return Status::out_of_range("stage host " + std::to_string(index));
  }
  stage_hosts_[index]->shutdown();
  return Status::ok();
}

Status Deployment::restart_stage_host(std::size_t index) {
  if (index >= stage_hosts_.size()) {
    return Status::out_of_range("stage host " + std::to_string(index));
  }
  auto host = make_stage_host(index);
  if (!host.is_ok()) return host.status();
  SDS_RETURN_IF_ERROR(host.value()->register_all());
  stage_hosts_[index] = std::move(host).value();
  return Status::ok();
}

Result<double> Deployment::stage_limit(StageId stage,
                                       stage::Dimension dim) const {
  for (const auto& host : stage_hosts_) {
    auto limit = host->stage_limit(stage, dim);
    if (limit.is_ok()) return limit;
  }
  return Status::not_found("stage " + std::to_string(stage.value()));
}

void Deployment::shutdown() {
  // Stages first (they would otherwise try to fail over), then the
  // middle tier, then the global controller.
  for (auto& host : stage_hosts_) host->shutdown();
  for (auto& agg : aggregators_) agg->shutdown();
  if (global_) global_->shutdown();
}

}  // namespace sds::runtime
