// Scatter/gather RPC primitives used by the live control plane.
//
// A control cycle's collect phase is a scatter (CollectRequest to every
// stage) followed by a gather (one StageMetrics from each). The enforce
// phase is the same with EnforceBatch / EnforceAck. Replies are matched by
// (message type, cycle id, sender connection).
//
// The Dispatcher sits in the endpoint's frame handler: frames matching a
// registered Gather are routed to it; everything else falls through to the
// default handler (registrations, heartbeats, ...).
//
// All gatherable message bodies start with a varint cycle id, so the
// dispatcher can route without fully decoding payloads.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/types.h"
#include "proto/messages.h"
#include "telemetry/metrics.h"
#include "transport/transport.h"

namespace sds::rpc {

/// Shared gather-layer instruments (created by Dispatcher::bind_telemetry
/// and referenced by every Gather the dispatcher starts).
struct GatherTelemetry {
  telemetry::Counter* gathers_started = nullptr;
  telemetry::Counter* replies = nullptr;
  telemetry::Counter* timeouts = nullptr;
  telemetry::Counter* peer_failures = nullptr;
  /// Expected replies per gather (the paper's fan-out size).
  telemetry::HistogramMetric* fanout = nullptr;
  /// wait_for() latency per gather wave.
  telemetry::HistogramMetric* wave_latency_ns = nullptr;
};

/// Reads the leading varint (cycle id) of a frame payload.
[[nodiscard]] std::optional<std::uint64_t> peek_cycle_id(const wire::Frame& frame);

/// One in-flight gather: waits for a reply of `type` from each expected
/// connection, optionally filtered by cycle id.
class Gather {
 public:
  struct Reply {
    ConnId conn;
    wire::Frame frame;
  };

  Gather(proto::MessageType type, std::optional<std::uint64_t> cycle,
         std::vector<ConnId> expected,
         std::shared_ptr<const GatherTelemetry> telemetry = nullptr,
         std::optional<proto::MessageType> alt_type = std::nullopt);

  /// Offer a frame; returns true if this gather consumed it.
  bool offer(ConnId conn, const wire::Frame& frame) SDS_EXCLUDES(mu_);

  /// Mark a connection as failed (e.g. it closed); the gather no longer
  /// waits for it.
  void fail(ConnId conn) SDS_EXCLUDES(mu_);

  /// Block until every expected reply arrived or `timeout` elapsed.
  /// Returns OK when complete, kDeadlineExceeded with the number of
  /// missing replies otherwise. Either way the replies that did arrive
  /// stay available — reply_count()/reply_bitmap() say which peers
  /// answered and take_replies() hands over the partial set.
  [[nodiscard]] Status wait_for(Nanos timeout) SDS_EXCLUDES(mu_);

  /// Quorum variant: additionally returns OK (without waiting further)
  /// once at least `quorum` replies arrived, even though some peers are
  /// still outstanding. Callers distinguish a full wave from a quorum
  /// wave via missing(). kDeadlineExceeded only when the timeout passes
  /// below quorum.
  [[nodiscard]] Status wait_for(Nanos timeout, std::size_t quorum)
      SDS_EXCLUDES(mu_);

  /// Collected replies (call after wait_for).
  [[nodiscard]] std::vector<Reply> take_replies() SDS_EXCLUDES(mu_);

  [[nodiscard]] std::size_t pending() const SDS_EXCLUDES(mu_);

  /// The expected peers, in construction order — the index space of
  /// reply_bitmap().
  [[nodiscard]] const std::vector<ConnId>& expected() const {
    return expected_;
  }
  /// Replies received so far (valid before and after take_replies()).
  [[nodiscard]] std::size_t reply_count() const SDS_EXCLUDES(mu_);
  /// Peers that neither replied nor failed.
  [[nodiscard]] std::size_t missing() const SDS_EXCLUDES(mu_);
  /// bit i == true iff expected()[i] replied.
  [[nodiscard]] std::vector<bool> reply_bitmap() const SDS_EXCLUDES(mu_);

 private:
  const proto::MessageType type_;
  /// Second accepted reply type, matched like `type_` (a peer answers
  /// with exactly one of the two). Lets one collect gather accept both
  /// full StageMetrics frames and StageMetricsDelta frames — both start
  /// with the varint cycle id peek_cycle_id() routes on.
  const std::optional<proto::MessageType> alt_type_;
  const std::optional<std::uint64_t> cycle_;
  const std::vector<ConnId> expected_;
  const std::shared_ptr<const GatherTelemetry> telemetry_;

  mutable Mutex mu_{LockRank::kRpcGather};
  CondVar cv_;
  std::unordered_set<ConnId> waiting_ SDS_GUARDED_BY(mu_);
  std::unordered_set<ConnId> replied_ SDS_GUARDED_BY(mu_);
  std::vector<Reply> replies_ SDS_GUARDED_BY(mu_);
  std::size_t failed_ SDS_GUARDED_BY(mu_) = 0;
};

/// Routes inbound frames to active gathers; thread-safe.
class Dispatcher {
 public:
  using FallbackHandler = std::function<void(ConnId, wire::Frame)>;

  void set_fallback(FallbackHandler handler) SDS_EXCLUDES(mu_);

  /// Register the gather layer's instruments (`sds_rpc_*{...labels}`)
  /// with `registry`; every subsequently started gather reports fan-out
  /// size, wave latency, replies and timeouts into them.
  void bind_telemetry(telemetry::MetricsRegistry& registry,
                      telemetry::Labels labels = {}) SDS_EXCLUDES(mu_);

  /// Create and register a gather. Automatically unregistered when the
  /// returned shared_ptr is the last reference and removed via collect().
  /// `alt_type` optionally names a second accepted reply type (e.g. a
  /// collect gather taking kStageMetrics OR kStageMetricsDelta).
  std::shared_ptr<Gather> start_gather(
      proto::MessageType type, std::optional<std::uint64_t> cycle,
      std::vector<ConnId> expected,
      std::optional<proto::MessageType> alt_type = std::nullopt)
      SDS_EXCLUDES(mu_);

  /// Remove a finished gather.
  void finish(const std::shared_ptr<Gather>& gather) SDS_EXCLUDES(mu_);

  /// Endpoint frame handler: route to a gather or the fallback.
  void on_frame(ConnId conn, wire::Frame frame) SDS_EXCLUDES(mu_);

  /// Endpoint connection handler: fail pending gathers on closed conns.
  void on_conn_event(ConnId conn, transport::ConnEvent event)
      SDS_EXCLUDES(mu_);

 private:
  Mutex mu_{LockRank::kRpcDispatcher};
  std::vector<std::shared_ptr<Gather>> gathers_ SDS_GUARDED_BY(mu_);
  FallbackHandler fallback_ SDS_GUARDED_BY(mu_);
  std::shared_ptr<const GatherTelemetry> telemetry_ SDS_GUARDED_BY(mu_);
};

/// Convenience: send `request` on `conn` and wait for a single reply of
/// type `Reply::kType` (no cycle filter). Used for registration.
template <typename ReplyT, typename RequestT>
Result<ReplyT> call(transport::Endpoint& endpoint, Dispatcher& dispatcher,
                    ConnId conn, const RequestT& request, Nanos timeout) {
  auto gather = dispatcher.start_gather(ReplyT::kType, std::nullopt, {conn});
  const Status sent = endpoint.send(conn, proto::to_frame(request));
  if (!sent.is_ok()) {
    dispatcher.finish(gather);
    return sent;
  }
  const Status status = gather->wait_for(timeout);
  dispatcher.finish(gather);
  if (!status.is_ok()) return status;
  auto replies = gather->take_replies();
  if (replies.empty()) return Status::unavailable("no reply");
  return proto::from_frame<ReplyT>(replies.front().frame);
}

}  // namespace sds::rpc
