// Broadcast — send one message to many connections with one encode.
//
// The collect, enforce, lease, and heartbeat phases all start with the
// controller sending an identical message to every registered downstream
// connection. Encoding (or even copying) that message per connection puts
// an O(fan-out) allocation cost inside the measured phase latency; at the
// paper's scales (2,500 connections per node) that dominates. broadcast()
// encodes once into a ref-counted wire::SharedFrame and queues the same
// immutable wire image on every connection via Endpoint::send_shared.
#pragma once

#include <cstddef>
#include <optional>

#include "proto/messages.h"
#include "transport/transport.h"
#include "wire/shared_frame.h"

namespace sds::rpc {

/// Send `frame` to every connection in `conns` (any iterable of ConnId).
/// Returns the number of connections the frame was queued on; failures
/// (closed connections) are skipped, matching the per-send behaviour the
/// callers had before.
template <typename ConnRange>
std::size_t broadcast_shared(transport::Endpoint& endpoint,
                             const ConnRange& conns,
                             const wire::SharedFrame& frame) {
  std::size_t queued = 0;
  for (const auto& conn : conns) {
    if (endpoint.send_shared(conn, frame).is_ok()) ++queued;
  }
  return queued;
}

/// Encode `msg` exactly once and send it to every connection in `conns`.
/// An optional trace context is encoded once into the shared image's
/// trailer so every hop of the wave stitches into the same trace.
template <typename M, typename ConnRange>
std::size_t broadcast(transport::Endpoint& endpoint, const ConnRange& conns,
                      const M& msg,
                      std::optional<wire::TraceContext> trace = std::nullopt) {
  return broadcast_shared(endpoint, conns, proto::to_shared_frame(msg, trace));
}

}  // namespace sds::rpc
