#include "rpc/gather.h"

#include <algorithm>

namespace sds::rpc {

std::optional<std::uint64_t> peek_cycle_id(const wire::Frame& frame) {
  wire::Decoder dec(frame.payload);
  const std::uint64_t cycle = dec.get_varint();
  if (!dec.ok()) return std::nullopt;
  return cycle;
}

Gather::Gather(proto::MessageType type, std::optional<std::uint64_t> cycle,
               std::vector<ConnId> expected,
               std::shared_ptr<const GatherTelemetry> telemetry,
               std::optional<proto::MessageType> alt_type)
    : type_(type),
      alt_type_(alt_type),
      cycle_(cycle),
      expected_(std::move(expected)),
      telemetry_(std::move(telemetry)) {
  waiting_.reserve(expected_.size());
  for (const ConnId c : expected_) waiting_.insert(c);
  replies_.reserve(expected_.size());
  if (telemetry_ != nullptr) {
    telemetry_->gathers_started->add(1);
    telemetry_->fanout->record(static_cast<std::int64_t>(expected_.size()));
  }
}

bool Gather::offer(ConnId conn, const wire::Frame& frame) {
  if (frame.type != static_cast<std::uint16_t>(type_) &&
      !(alt_type_.has_value() &&
        frame.type == static_cast<std::uint16_t>(*alt_type_))) {
    return false;
  }
  if (cycle_.has_value()) {
    const auto cycle = peek_cycle_id(frame);
    if (!cycle || *cycle != *cycle_) return false;
  }
  MutexLock lock(mu_);
  const auto it = waiting_.find(conn);
  if (it == waiting_.end()) return false;
  waiting_.erase(it);
  replied_.insert(conn);
  replies_.push_back({conn, frame});
  if (telemetry_ != nullptr) telemetry_->replies->add(1);
  cv_.notify_all();  // every reply may satisfy a quorum wait
  return true;
}

void Gather::fail(ConnId conn) {
  MutexLock lock(mu_);
  if (waiting_.erase(conn) > 0) {
    ++failed_;
    if (telemetry_ != nullptr) telemetry_->peer_failures->add(1);
    if (waiting_.empty()) cv_.notify_all();
  }
}

Status Gather::wait_for(Nanos timeout) {
  return wait_for(timeout, expected_.size());
}

Status Gather::wait_for(Nanos timeout, std::size_t quorum) {
  MutexLock lock(mu_);
  const auto started = std::chrono::steady_clock::now();
  cv_.wait_for(lock, timeout, [&]() SDS_REQUIRES(mu_) {
    return waiting_.empty() || replies_.size() >= quorum;
  });
  const bool all_in = waiting_.empty();
  const bool quorum_met = replies_.size() >= quorum;
  if (telemetry_ != nullptr) {
    telemetry_->wave_latency_ns->record(
        std::chrono::duration_cast<Nanos>(std::chrono::steady_clock::now() -
                                          started));
    if (!all_in && !quorum_met) telemetry_->timeouts->add(1);
  }
  if (!all_in) {
    if (quorum_met) return Status::ok();  // degraded wave; see missing()
    return Status::deadline_exceeded(std::to_string(waiting_.size()) +
                                     " replies missing");
  }
  if (failed_ > 0) {
    return Status::unavailable(std::to_string(failed_) + " peers failed");
  }
  return Status::ok();
}

std::vector<Gather::Reply> Gather::take_replies() {
  MutexLock lock(mu_);
  return std::move(replies_);
}

std::size_t Gather::pending() const {
  MutexLock lock(mu_);
  return waiting_.size();
}

std::size_t Gather::reply_count() const {
  MutexLock lock(mu_);
  return replied_.size();
}

std::size_t Gather::missing() const {
  MutexLock lock(mu_);
  return waiting_.size();
}

std::vector<bool> Gather::reply_bitmap() const {
  MutexLock lock(mu_);
  std::vector<bool> bitmap(expected_.size(), false);
  for (std::size_t i = 0; i < expected_.size(); ++i) {
    bitmap[i] = replied_.count(expected_[i]) > 0;
  }
  return bitmap;
}

void Dispatcher::set_fallback(FallbackHandler handler) {
  MutexLock lock(mu_);
  fallback_ = std::move(handler);
}

void Dispatcher::bind_telemetry(telemetry::MetricsRegistry& registry,
                                telemetry::Labels labels) {
  auto instruments = std::make_shared<GatherTelemetry>();
  instruments->gathers_started =
      registry.counter("sds_rpc_gathers_started_total", labels);
  instruments->replies = registry.counter("sds_rpc_replies_total", labels);
  instruments->timeouts =
      registry.counter("sds_rpc_gather_timeouts_total", labels);
  instruments->peer_failures =
      registry.counter("sds_rpc_peer_failures_total", labels);
  instruments->fanout = registry.histogram("sds_rpc_gather_fanout", labels);
  instruments->wave_latency_ns =
      registry.histogram("sds_rpc_gather_wave_latency_ns", std::move(labels));
  MutexLock lock(mu_);
  telemetry_ = std::move(instruments);
}

std::shared_ptr<Gather> Dispatcher::start_gather(
    proto::MessageType type, std::optional<std::uint64_t> cycle,
    std::vector<ConnId> expected, std::optional<proto::MessageType> alt_type) {
  std::shared_ptr<const GatherTelemetry> telemetry;
  {
    MutexLock lock(mu_);
    telemetry = telemetry_;
  }
  auto gather = std::make_shared<Gather>(type, cycle, std::move(expected),
                                         std::move(telemetry), alt_type);
  MutexLock lock(mu_);
  gathers_.push_back(gather);
  return gather;
}

void Dispatcher::finish(const std::shared_ptr<Gather>& gather) {
  MutexLock lock(mu_);
  gathers_.erase(std::remove(gathers_.begin(), gathers_.end(), gather),
                 gathers_.end());
}

void Dispatcher::on_frame(ConnId conn, wire::Frame frame) {
  std::vector<std::shared_ptr<Gather>> gathers;
  FallbackHandler fallback;
  {
    MutexLock lock(mu_);
    gathers = gathers_;
    fallback = fallback_;
  }
  for (const auto& gather : gathers) {
    if (gather->offer(conn, frame)) return;
  }
  if (fallback) fallback(conn, std::move(frame));
}

void Dispatcher::on_conn_event(ConnId conn, transport::ConnEvent event) {
  if (event != transport::ConnEvent::kClosed) return;
  std::vector<std::shared_ptr<Gather>> gathers;
  {
    MutexLock lock(mu_);
    gathers = gathers_;
  }
  for (const auto& gather : gathers) gather->fail(conn);
}

}  // namespace sds::rpc
