#include "monitor/resource_monitor.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace sds::monitor {

std::optional<Nanos> read_process_cpu_time() {
  std::ifstream stat("/proc/self/stat");
  if (!stat) return std::nullopt;
  std::string line;
  std::getline(stat, line);
  // Field 2 (comm) may contain spaces; skip past the closing paren.
  const auto paren = line.rfind(')');
  if (paren == std::string::npos) return std::nullopt;
  std::istringstream rest(line.substr(paren + 1));
  std::string field;
  // Fields 3..13 precede utime (14) and stime (15).
  for (int i = 3; i <= 13; ++i) rest >> field;
  long long utime = 0;
  long long stime = 0;
  rest >> utime >> stime;
  if (!rest) return std::nullopt;
  const long ticks_per_sec = ::sysconf(_SC_CLK_TCK);
  if (ticks_per_sec <= 0) return std::nullopt;
  const double secs =
      static_cast<double>(utime + stime) / static_cast<double>(ticks_per_sec);
  return Nanos{static_cast<std::int64_t>(secs * 1e9)};
}

std::optional<std::uint64_t> read_process_rss_bytes() {
  std::ifstream status("/proc/self/status");
  if (!status) return std::nullopt;
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      std::istringstream rest(line.substr(6));
      std::uint64_t kb = 0;
      rest >> kb;
      if (!rest) return std::nullopt;
      return kb * 1024;
    }
  }
  return std::nullopt;
}

ResourceMonitor::ResourceMonitor(
    std::vector<const transport::Endpoint*> endpoints)
    : endpoints_(std::move(endpoints)) {}

void ResourceMonitor::add_endpoint(const transport::Endpoint* endpoint) {
  endpoints_.push_back(endpoint);
}

ResourceSample ResourceMonitor::sample() const {
  ResourceSample s;
  s.wall = SystemClock::instance().now();
  s.cpu_time = read_process_cpu_time().value_or(Nanos{0});
  s.rss_bytes = read_process_rss_bytes().value_or(0);
  for (const auto* endpoint : endpoints_) {
    const auto counters = endpoint->counters();
    s.bytes_tx += counters.bytes_sent;
    s.bytes_rx += counters.bytes_received;
  }
  return s;
}

ResourceUsage ResourceMonitor::usage_between(const ResourceSample& a,
                                             const ResourceSample& b) {
  ResourceUsage u;
  u.rss_gb = static_cast<double>(b.rss_bytes) / 1e9;
  // A zero or negative interval (samples taken back-to-back, or a clock
  // step between them) has no meaningful rate: dividing by a clamped
  // epsilon would report absurd CPU percentages and bandwidths.
  const double wall_s = to_seconds(b.wall - a.wall);
  if (wall_s <= 0.0) return u;
  u.cpu_percent = to_seconds(b.cpu_time - a.cpu_time) / wall_s * 100.0;
  u.transmitted_mbps =
      static_cast<double>(b.bytes_tx - a.bytes_tx) / wall_s / 1e6;
  u.received_mbps = static_cast<double>(b.bytes_rx - a.bytes_rx) / wall_s / 1e6;
  return u;
}

void ResourceMonitor::bind(telemetry::MetricsRegistry& registry,
                           telemetry::Labels labels) {
  auto* cpu = registry.gauge("sds_process_cpu_percent", labels);
  auto* rss = registry.gauge("sds_process_rss_bytes", labels);
  auto* tx_rate = registry.gauge("sds_transport_tx_mbps", labels);
  auto* rx_rate = registry.gauge("sds_transport_rx_mbps", labels);
  registry.add_collector([this, cpu, rss, tx_rate, rx_rate](
                             telemetry::MetricsRegistry&) {
    const ResourceSample now = sample();
    rss->set(static_cast<double>(now.rss_bytes));
    MutexLock lock(collect_mu_);
    if (has_last_collected_) {
      const ResourceUsage usage = usage_between(last_collected_, now);
      cpu->set(usage.cpu_percent);
      tx_rate->set(usage.transmitted_mbps);
      rx_rate->set(usage.received_mbps);
    }
    last_collected_ = now;
    has_last_collected_ = true;
  });
}

namespace {
constexpr std::string_view kCanonicalPhases[] = {
    "collect", "aggregate", "compute", "disseminate", "enforce"};
}  // namespace

void PhaseResourceProbe::bind(telemetry::MetricsRegistry& registry,
                              telemetry::Labels labels) {
  registry_ = &registry;
  labels_ = std::move(labels);
  for (const auto phase : kCanonicalPhases) {
    entry(phase);  // creates the gauges eagerly
  }
}

PhaseResourceProbe::Entry& PhaseResourceProbe::entry(std::string_view phase) {
  for (auto& [name, e] : entries_) {
    if (name == phase) return e;
  }
  entries_.emplace_back(std::string(phase), Entry{});
  auto& e = entries_.back().second;
  if (registry_ != nullptr) {
    telemetry::Labels phase_labels = labels_;
    phase_labels.emplace_back("phase", std::string(phase));
    e.cpu_gauge = registry_->gauge("sds_phase_cpu_time_ns", phase_labels);
    e.rss_gauge =
        registry_->gauge("sds_phase_rss_delta_bytes", std::move(phase_labels));
  }
  return e;
}

void PhaseResourceProbe::cycle_start() {
  last_cpu_ = read_process_cpu_time().value_or(Nanos{0});
  last_rss_ = static_cast<std::int64_t>(read_process_rss_bytes().value_or(0));
  primed_ = true;
}

void PhaseResourceProbe::mark(std::string_view phase) {
  if (!primed_) cycle_start();
  const Nanos cpu = read_process_cpu_time().value_or(Nanos{0});
  const auto rss =
      static_cast<std::int64_t>(read_process_rss_bytes().value_or(0));
  auto& e = entry(phase);
  e.cpu_total += cpu - last_cpu_;
  e.rss_last = rss - last_rss_;
  if (e.cpu_gauge != nullptr) {
    e.cpu_gauge->set(static_cast<double>(e.cpu_total.count()));
    e.rss_gauge->set(static_cast<double>(e.rss_last));
  }
  last_cpu_ = cpu;
  last_rss_ = rss;
}

Nanos PhaseResourceProbe::cpu_time(std::string_view phase) const {
  for (const auto& [name, e] : entries_) {
    if (name == phase) return e.cpu_total;
  }
  return Nanos{0};
}

std::int64_t PhaseResourceProbe::rss_delta(std::string_view phase) const {
  for (const auto& [name, e] : entries_) {
    if (name == phase) return e.rss_last;
  }
  return 0;
}

}  // namespace sds::monitor
