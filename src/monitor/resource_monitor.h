// REMORA-style resource monitor for the live runtime: samples process CPU
// time (/proc/self/stat), resident set size (/proc/self/status), and
// transport byte counters, producing the CPU% / memory / MB/s columns of
// Tables II–IV for real deployments.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "telemetry/metrics.h"
#include "transport/transport.h"

namespace sds::monitor {

struct ResourceSample {
  Nanos wall{0};
  /// Cumulative process CPU time (user+system).
  Nanos cpu_time{0};
  /// Resident set size in bytes.
  std::uint64_t rss_bytes = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t bytes_rx = 0;
};

/// Usage over an interval between two samples.
struct ResourceUsage {
  double cpu_percent = 0;       // process CPU / wall * 100
  double rss_gb = 0;            // at the end of the interval
  double transmitted_mbps = 0;  // MB/s over the interval
  double received_mbps = 0;
};

/// Read the current process's CPU time from procfs (nullopt off-Linux).
[[nodiscard]] std::optional<Nanos> read_process_cpu_time();

/// Read the current process's RSS from procfs.
[[nodiscard]] std::optional<std::uint64_t> read_process_rss_bytes();

class ResourceMonitor {
 public:
  /// `endpoints` contribute their byte counters to each sample; they must
  /// outlive the monitor.
  explicit ResourceMonitor(std::vector<const transport::Endpoint*> endpoints = {});

  void add_endpoint(const transport::Endpoint* endpoint);

  /// Take a sample now.
  [[nodiscard]] ResourceSample sample() const;

  /// Usage rates between two samples (b taken after a). A zero or
  /// negative wall interval (clock skew, back-to-back samples) yields all
  /// rates 0 rather than a division by ~0; rss_gb is still reported.
  [[nodiscard]] static ResourceUsage usage_between(const ResourceSample& a,
                                                   const ResourceSample& b);

  /// Register this monitor's gauges with `registry`: on every registry
  /// snapshot a collector samples procfs + endpoints and publishes
  /// `sds_process_cpu_percent`, `sds_process_rss_bytes` and the
  /// `sds_transport_{tx,rx}_mbps` rates since the previous snapshot.
  /// The monitor must outlive the registry's last snapshot().
  void bind(telemetry::MetricsRegistry& registry, telemetry::Labels labels = {});

 private:
  std::vector<const transport::Endpoint*> endpoints_;
  // Previous sample seen by the telemetry collector (rates need a delta).
  Mutex collect_mu_{LockRank::kMonitor};
  ResourceSample last_collected_ SDS_GUARDED_BY(collect_mu_){};
  bool has_last_collected_ SDS_GUARDED_BY(collect_mu_) = false;
};

/// Per-phase CPU/RSS attribution alongside the whole-process totals.
///
/// The cycle engine calls cycle_start() at the top of each control cycle
/// and mark(phase) as each phase closes; the probe attributes the CPU
/// time and RSS movement since the previous mark to that phase, so
/// trace_report can correlate a slow phase with a resource spike.
/// Exported (after bind()) as `sds_phase_cpu_time_ns{phase=...}`
/// (cumulative) and `sds_phase_rss_delta_bytes{phase=...}` (last cycle).
///
/// Intended for the single cycle thread; mark() costs two procfs reads,
/// negligible against live cycle periods.
class PhaseResourceProbe {
 public:
  /// Create the per-phase gauges up front (one pair per canonical phase).
  void bind(telemetry::MetricsRegistry& registry,
            telemetry::Labels labels = {});

  /// Baseline sample at the top of a cycle.
  void cycle_start();

  /// Close a phase: attribute deltas since cycle_start()/the last mark().
  /// Unknown phase names are attributed to their own row (the gauges only
  /// exist when bind() saw the canonical five, but accounting still works).
  void mark(std::string_view phase);

  /// Cumulative CPU time attributed to `phase` (zero if never marked).
  [[nodiscard]] Nanos cpu_time(std::string_view phase) const;
  /// RSS delta attributed to `phase` during the most recent cycle.
  [[nodiscard]] std::int64_t rss_delta(std::string_view phase) const;

 private:
  struct Entry {
    Nanos cpu_total{0};
    std::int64_t rss_last = 0;
    telemetry::Gauge* cpu_gauge = nullptr;
    telemetry::Gauge* rss_gauge = nullptr;
  };
  Entry& entry(std::string_view phase);

  std::vector<std::pair<std::string, Entry>> entries_;
  telemetry::MetricsRegistry* registry_ = nullptr;
  telemetry::Labels labels_;
  Nanos last_cpu_{0};
  std::int64_t last_rss_ = 0;
  bool primed_ = false;
};

}  // namespace sds::monitor
