#include "fault/chaos_transport.h"

#include <chrono>
#include <utility>

namespace sds::fault {
namespace {

/// FNV-1a: a stable address hash (std::hash is implementation-defined,
/// which would make the per-endpoint fault stream toolchain-dependent).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

/// One wrapped endpoint. Inbound delivery is untouched (handlers are
/// installed on the base endpoint); every outbound frame consults the
/// network for a fate first. The base endpoint is held by shared_ptr so
/// delayed frames queued on the delayer thread can outlive close().
class ChaosEndpoint final : public transport::Endpoint {
 public:
  ChaosEndpoint(ChaosNetwork* net, std::shared_ptr<transport::Endpoint> base,
                std::uint64_t stream_seed)
      : net_(net), base_(std::move(base)), rng_(stream_seed) {}

  [[nodiscard]] const std::string& address() const override {
    return base_->address();
  }
  void set_frame_handler(transport::FrameHandler handler) override {
    base_->set_frame_handler(std::move(handler));
  }
  void set_conn_handler(transport::ConnEventHandler handler) override {
    base_->set_conn_handler(std::move(handler));
  }
  Result<ConnId> connect(const std::string& peer_address) override {
    return base_->connect(peer_address);
  }

  Status send(ConnId conn, wire::Frame frame) override {
    switch (net_->next_fate(rng_)) {
      case MessageFate::kDrop:
        return Status::ok();  // the sender never learns a packet was lost
      case MessageFate::kDuplicate: {
        wire::Frame copy = frame;
        Status first = base_->send(conn, std::move(copy));
        if (!first.is_ok()) return first;
        return base_->send(conn, std::move(frame));
      }
      case MessageFate::kDelay:
        net_->enqueue_delayed(
            net_->options_.delay,
            [base = base_, conn, f = std::move(frame)]() mutable {
              (void)base->send(conn, std::move(f));
            });
        return Status::ok();
      case MessageFate::kDeliver:
        break;
    }
    return base_->send(conn, std::move(frame));
  }

  Status send_shared(ConnId conn, const wire::SharedFrame& frame) override {
    switch (net_->next_fate(rng_)) {
      case MessageFate::kDrop:
        return Status::ok();
      case MessageFate::kDuplicate: {
        Status first = base_->send_shared(conn, frame);
        if (!first.is_ok()) return first;
        return base_->send_shared(conn, frame);
      }
      case MessageFate::kDelay:
        net_->enqueue_delayed(net_->options_.delay,
                              [base = base_, conn, f = frame]() {
                                (void)base->send_shared(conn, f);
                              });
        return Status::ok();
      case MessageFate::kDeliver:
        break;
    }
    return base_->send_shared(conn, frame);
  }

  void close(ConnId conn) override { base_->close(conn); }
  void shutdown() override { base_->shutdown(); }
  [[nodiscard]] transport::Counters counters() const override {
    return base_->counters();
  }

 private:
  ChaosNetwork* net_;
  std::shared_ptr<transport::Endpoint> base_;
  Rng rng_;  // drawn only inside ChaosNetwork::next_fate, under its mu_
};

ChaosNetwork::ChaosNetwork(transport::Network& base, const Options& options)
    : base_(&base), options_(options) {
  if (options_.metrics != nullptr) {
    injected_ = options_.metrics->counter("sds_fault_injected_total");
  }
  if (options_.delay_probability > 0) {
    delayer_ = std::thread([this] { delayer_main(); });
  }
}

ChaosNetwork::ChaosNetwork(transport::Network& base, const FaultPlan& plan,
                           telemetry::MetricsRegistry* metrics)
    : ChaosNetwork(base, Options{plan.seed, plan.drop_probability,
                                 plan.duplicate_probability,
                                 plan.delay_probability, plan.delay, metrics}) {
}

ChaosNetwork::~ChaosNetwork() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  delayer_cv_.notify_all();
  if (delayer_.joinable()) delayer_.join();
}

Result<std::unique_ptr<transport::Endpoint>> ChaosNetwork::bind(
    const std::string& address, const transport::EndpointOptions& options) {
  auto base = base_->bind(address, options);
  if (!base.is_ok()) return base.status();
  std::uint64_t stream_seed =
      SplitMix64(options_.seed ^ fnv1a(address)).next();
  return std::unique_ptr<transport::Endpoint>(std::make_unique<ChaosEndpoint>(
      this, std::shared_ptr<transport::Endpoint>(std::move(base).value()),
      stream_seed));
}

ChaosStats ChaosNetwork::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

MessageFate ChaosNetwork::next_fate(Rng& endpoint_stream) {
  const double total = options_.drop_probability +
                       options_.duplicate_probability +
                       options_.delay_probability;
  if (total <= 0) return MessageFate::kDeliver;
  MutexLock lock(mu_);
  const double u = endpoint_stream.uniform01();
  MessageFate fate = MessageFate::kDeliver;
  if (u < options_.drop_probability) {
    fate = MessageFate::kDrop;
    ++stats_.dropped;
  } else if (u < options_.drop_probability + options_.duplicate_probability) {
    fate = MessageFate::kDuplicate;
    ++stats_.duplicated;
  } else if (u < total) {
    fate = MessageFate::kDelay;
    ++stats_.delayed;
  }
  if (fate != MessageFate::kDeliver && injected_ != nullptr) injected_->add();
  return fate;
}

void ChaosNetwork::enqueue_delayed(Nanos wait, std::function<void()> deliver) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    delayed_.push_back(Delayed{wait, std::move(deliver)});
  }
  delayer_cv_.notify_all();
}

void ChaosNetwork::delayer_main() {
  for (;;) {
    Delayed item;
    {
      MutexLock lock(mu_);
      delayer_cv_.wait(lock, [this] SDS_REQUIRES(mu_) {
        return shutdown_ || !delayed_.empty();
      });
      if (shutdown_) return;  // queued frames are dropped on teardown
      item = std::move(delayed_.front());
      delayed_.pop_front();
      // Hold the frame for its extra latency (relative sleep — src/fault
      // never reads a clock). Interruptible by shutdown.
      if (delayer_cv_.wait_for(
              lock, std::chrono::nanoseconds(item.wait.count()),
              [this] SDS_REQUIRES(mu_) { return shutdown_; })) {
        return;
      }
    }
    item.deliver();
  }
}

}  // namespace sds::fault
