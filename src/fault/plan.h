// FaultPlan — a deterministic, seeded schedule of faults shared by the
// discrete-event simulator and the live runtime.
//
// A plan mixes scripted events (crash stage 17 at t=120ms for 500ms)
// with stochastic models (Poisson churn with a per-stage MTBF, per-link
// message drop/delay/duplication). Before a run starts, the plan is
// *compiled* against a concrete topology into a CompiledPlan: every
// stochastic draw is expanded up front with an sds::Rng derived from the
// plan seed, so the compiled timeline is a pure value. At injection time
// the simulator asks only pure, state-free questions of it —
// "is stage i up at time t?", "what happens to the collect reply of
// (cycle c, stage i)?" — which makes fault injection independent of
// event-execution interleavings: `--lanes=N` stays bit-identical.
//
// Determinism contract (enforced by tools/sdslint on this directory):
// nothing in src/fault reads a wall clock or an unseeded random source.
// All times are virtual Nanos from the run's epoch; all randomness
// derives from FaultPlan::seed.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace sds::fault {

/// What a fault decision does to one message.
enum class MessageFate : std::uint8_t {
  kDeliver = 0,
  kDrop = 1,
  kDuplicate = 2,
  kDelay = 3,
};

/// Message classes the per-link fault model distinguishes. The (kind,
/// cycle, entity) triple keys one deterministic draw.
enum class MessageKind : std::uint8_t {
  kCollectReply = 1,   // stage -> controller StageMetrics
  kEnforceAck = 2,     // stage -> controller EnforceAck
  kAggregatorReport = 3,  // aggregator -> global AggregatedMetrics
  kAggregatorAck = 4,     // aggregator -> global merged EnforceAck
};

struct StageCrash {
  std::uint32_t stage = 0;
  Nanos at{0};
  /// Outage length; <= 0 means the stage never comes back.
  Nanos down_for{0};
};

struct AggregatorCrash {
  std::uint32_t aggregator = 0;
  Nanos at{0};
  Nanos down_for{0};
};

/// CPU-work multiplier on a contiguous stage range during a window
/// (slow-node degradation: thermal throttling, a noisy neighbour).
struct SlowWindow {
  std::uint32_t first_stage = 0;
  std::uint32_t last_stage = 0;  // inclusive
  Nanos from{0};
  Nanos until{0};
  double multiplier = 1.0;
};

/// Network partition: a contiguous stage range unreachable from its
/// controllers during a window (messages in both directions are lost).
struct PartitionWindow {
  std::uint32_t first_stage = 0;
  std::uint32_t last_stage = 0;  // inclusive
  Nanos from{0};
  Nanos until{0};
};

/// The user-facing plan: a seeded script plus stochastic knobs. Build
/// programmatically or parse from the `--fault-plan=FILE` text format
/// (one directive per line, '#' comments — see parse()).
struct FaultPlan {
  /// Root seed for every stochastic expansion (churn arrival times,
  /// outage lengths, message fates).
  std::uint64_t seed = 1;

  // -- Degraded-cycle contract ----------------------------------------
  /// Fraction of expected replies that lets a phase deadline close the
  /// phase degraded (1.0 = close only on timeout with whatever arrived).
  double quorum = 1.0;
  /// Controller-side deadline per gather phase (collect replies at each
  /// controller, enforce acks); measured from the phase fan-out.
  Nanos phase_timeout = millis(20);
  /// Deadline re-arms while below quorum before the phase is force-closed
  /// (progress guarantee: a cycle can never hang).
  std::size_t max_deadline_extensions = 8;

  // -- Poisson churn ----------------------------------------------------
  /// Mean time between failures per stage, seconds (0 = no stage churn).
  double stage_mtbf_s = 0;
  /// Mean outage length per stage failure, seconds (exponential).
  double stage_downtime_s = 1.0;
  double aggregator_mtbf_s = 0;
  double aggregator_downtime_s = 1.0;

  // -- Per-link message faults ------------------------------------------
  /// One fate is drawn per (kind, cycle, entity); the probabilities are
  /// therefore mutually exclusive and must sum to <= 1.
  double drop_probability = 0;
  double duplicate_probability = 0;
  double delay_probability = 0;
  /// Extra one-way latency applied to delayed messages.
  Nanos delay = micros(200);

  // -- Scripted events ---------------------------------------------------
  std::vector<StageCrash> stage_crashes;
  std::vector<AggregatorCrash> aggregator_crashes;
  std::vector<SlowWindow> slow_windows;
  std::vector<PartitionWindow> partitions;

  // Builder conveniences (return *this for chaining).
  FaultPlan& crash_stage(std::uint32_t stage, Nanos at, Nanos down_for = Nanos{0});
  FaultPlan& crash_aggregator(std::uint32_t aggregator, Nanos at,
                              Nanos down_for = Nanos{0});
  FaultPlan& slow(std::uint32_t first, std::uint32_t last, Nanos from,
                  Nanos until, double multiplier);
  FaultPlan& partition(std::uint32_t first, std::uint32_t last, Nanos from,
                       Nanos until);

  /// True when the plan can inject nothing (no scripted events, no churn,
  /// no message faults) — callers may skip compilation entirely.
  [[nodiscard]] bool empty() const;

  /// Field sanity (probabilities, quorum range, timeout sign).
  [[nodiscard]] Status validate() const;

  /// Parse the text format. One directive per line; '#' starts a comment.
  ///   seed 7
  ///   quorum 0.9
  ///   timeout_ms 15
  ///   churn stage mtbf_s 30 downtime_s 5
  ///   churn aggregator mtbf_s 120 downtime_s 10
  ///   drop 0.01
  ///   duplicate 0.005
  ///   delay 0.02 200          # probability, extra latency in µs
  ///   crash stage 17 at_ms 120 for_ms 500
  ///   crash aggregator 0 at_ms 50 for_ms 0   # 0 = forever
  ///   slow 0 99 from_ms 0 until_ms 1000 x 4
  ///   partition 100 199 from_ms 50 until_ms 250
  [[nodiscard]] static Result<FaultPlan> parse(std::string_view text);

  /// Read and parse a plan file (the benches' `--fault-plan=FILE`).
  [[nodiscard]] static Result<FaultPlan> load(const std::string& path);
};

/// A [from, until) outage; until == kNever means permanent.
struct DownInterval {
  Nanos from{0};
  Nanos until{0};
};

/// The plan expanded against a concrete topology: per-entity sorted
/// outage timelines plus the pure message-fate function. Immutable after
/// compile(); every query is const, state-free and O(log intervals), so
/// it may be consulted concurrently from any simulation lane.
class CompiledPlan {
 public:
  static constexpr Nanos kNever{std::numeric_limits<std::int64_t>::max()};

  /// Expand `plan` for a topology of `num_stages` stages and
  /// `num_aggregators` aggregators over [0, horizon) of virtual time.
  /// The plan must validate().
  [[nodiscard]] static CompiledPlan compile(const FaultPlan& plan,
                                            std::size_t num_stages,
                                            std::size_t num_aggregators,
                                            Nanos horizon);

  [[nodiscard]] bool stage_up(std::size_t stage, Nanos t) const;
  [[nodiscard]] bool aggregator_up(std::size_t aggregator, Nanos t) const;

  /// Stage unreachable due to a partition window (independent of up()).
  [[nodiscard]] bool partitioned(std::size_t stage, Nanos t) const;

  /// CPU-work multiplier for a stage at `t` (1.0 = healthy).
  [[nodiscard]] double service_multiplier(std::size_t stage, Nanos t) const;

  /// Deterministic per-message fate: a pure function of
  /// (seed, kind, cycle, entity) — no internal state, no draw order.
  [[nodiscard]] MessageFate message_fate(MessageKind kind, std::uint64_t cycle,
                                         std::uint64_t entity) const;

  /// Latest restart (outage end) of `stage` at or before `t`; Nanos{-1}
  /// when the stage has not restarted by `t`. Recovery-time accounting:
  /// recovery = first successful collect after restart - restart.
  [[nodiscard]] Nanos last_stage_restart_before(std::size_t stage, Nanos t) const;

  [[nodiscard]] double quorum() const { return quorum_; }
  /// ceil(quorum * expected), clamped to [1, expected] (0 when expected
  /// is 0): the reply count that lets a deadline close a phase.
  [[nodiscard]] std::size_t quorum_count(std::size_t expected) const;
  [[nodiscard]] Nanos phase_timeout() const { return phase_timeout_; }
  [[nodiscard]] std::size_t max_deadline_extensions() const {
    return max_extensions_;
  }
  [[nodiscard]] Nanos delay() const { return delay_; }

  /// Total scheduled outages (stage + aggregator), for tests/reporting.
  [[nodiscard]] std::size_t total_outages() const { return total_outages_; }

  /// Expanded outage timelines (sorted, non-overlapping), one vector per
  /// entity. The runtime FaultDriver turns these into kill/restart calls.
  [[nodiscard]] const std::vector<DownInterval>& stage_outages(
      std::size_t stage) const {
    return stage_down_[stage];
  }
  [[nodiscard]] const std::vector<DownInterval>& aggregator_outages(
      std::size_t aggregator) const {
    return aggregator_down_[aggregator];
  }
  [[nodiscard]] std::size_t num_stages() const { return stage_down_.size(); }
  [[nodiscard]] std::size_t num_aggregators() const {
    return aggregator_down_.size();
  }

 private:
  CompiledPlan() = default;

  [[nodiscard]] static bool up_at(const std::vector<DownInterval>& intervals,
                                  Nanos t);

  std::vector<std::vector<DownInterval>> stage_down_;
  std::vector<std::vector<DownInterval>> aggregator_down_;
  std::vector<SlowWindow> slow_windows_;
  std::vector<PartitionWindow> partitions_;
  std::uint64_t seed_ = 0;
  double quorum_ = 1.0;
  Nanos phase_timeout_{0};
  std::size_t max_extensions_ = 0;
  double drop_p_ = 0;
  double dup_p_ = 0;
  double delay_p_ = 0;
  Nanos delay_{0};
  std::size_t total_outages_ = 0;
};

}  // namespace sds::fault
