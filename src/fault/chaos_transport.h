// ChaosNetwork — a fault-wrapping transport::Network decorator.
//
// Wraps any base Network (in-process or TCP) and applies a FaultPlan's
// per-link message faults to every frame an endpoint sends: drops
// (send() succeeds but nothing is transmitted — exactly how a lost
// packet looks to the sender), duplications (the frame is queued twice)
// and delays (the frame is handed to a single delayer thread that holds
// it for the plan's extra latency before forwarding).
//
// Fault decisions come from a seeded sds::Rng per endpoint (stream
// derived from the plan seed and the endpoint address), so a run's fault
// pattern is reproducible for a fixed message order. Unlike the
// simulator — where fates are pure functions of (cycle, entity) — the
// live runtime's message order depends on thread scheduling, so runtime
// chaos is statistically, not bitwise, reproducible. Cross-validation
// against the simulator therefore uses scripted crash events (see
// FaultDriver), which are exact on both sides.
//
// The delayer thread never reads a clock: delays are realized with
// relative sleeps, so a queued frame waits *at least* the configured
// extra latency (strictly more while the queue is busy). Chaos delays
// are lower bounds, as in any real degraded network.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"
#include "fault/plan.h"
#include "telemetry/metrics.h"
#include "transport/transport.h"

namespace sds::fault {

/// Per-network injection counters (one block shared by all endpoints).
struct ChaosStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;

  [[nodiscard]] std::uint64_t total() const {
    return dropped + duplicated + delayed;
  }
};

class ChaosNetwork final : public transport::Network {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double drop_probability = 0;
    double duplicate_probability = 0;
    double delay_probability = 0;
    Nanos delay = micros(200);
    /// Optional: counts injections into `sds_fault_injected_total`.
    telemetry::MetricsRegistry* metrics = nullptr;
  };

  ChaosNetwork(transport::Network& base, const Options& options);
  /// Convenience: lift the message-fault knobs from a FaultPlan.
  ChaosNetwork(transport::Network& base, const FaultPlan& plan,
               telemetry::MetricsRegistry* metrics = nullptr);
  ~ChaosNetwork() override;

  Result<std::unique_ptr<transport::Endpoint>> bind(
      const std::string& address,
      const transport::EndpointOptions& options) override;

  [[nodiscard]] ChaosStats stats() const;

 private:
  friend class ChaosEndpoint;

  struct Delayed {
    Nanos wait{0};
    std::function<void()> deliver;
  };

  /// Fate for the next frame on `endpoint_stream` (seeded Rng under mu_).
  MessageFate next_fate(Rng& endpoint_stream);
  void enqueue_delayed(Nanos wait, std::function<void()> deliver);
  void count(MessageFate fate);
  void delayer_main();

  transport::Network* base_;
  const Options options_;
  telemetry::Counter* injected_ = nullptr;

  mutable Mutex mu_{LockRank::kChaosNetwork};
  ChaosStats stats_ SDS_GUARDED_BY(mu_);
  std::deque<Delayed> delayed_ SDS_GUARDED_BY(mu_);
  bool shutdown_ SDS_GUARDED_BY(mu_) = false;
  CondVar delayer_cv_;
  std::thread delayer_;
};

}  // namespace sds::fault
