#include "fault/plan.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/rng.h"

namespace sds::fault {

namespace {

/// Deterministic uniform [0,1) draw from a key tuple: SplitMix64 over the
/// mixed key. Pure — the same (seed, kind, cycle, entity) always yields
/// the same value regardless of draw order, lane count, or thread timing.
double hash01(std::uint64_t seed, std::uint64_t kind, std::uint64_t cycle,
              std::uint64_t entity) {
  SplitMix64 sm(seed ^ (kind * 0x9E3779B97F4A7C15ULL) ^
                (cycle * 0xC2B2AE3D27D4EB4FULL) ^
                (entity * 0x165667B19E3779F9ULL));
  // One warm-up step decorrelates nearby keys before the output draw.
  (void)sm.next();
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
}

Nanos seconds_to_nanos(double s) {
  return Nanos{static_cast<std::int64_t>(s * 1e9)};
}

/// Merge scripted crashes + churn arrivals into a sorted, non-overlapping
/// outage timeline for one entity.
std::vector<DownInterval> normalize(std::vector<DownInterval> intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const DownInterval& a, const DownInterval& b) {
              return a.from < b.from;
            });
  std::vector<DownInterval> merged;
  for (const DownInterval& iv : intervals) {
    if (!merged.empty() && iv.from <= merged.back().until) {
      merged.back().until = std::max(merged.back().until, iv.until);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

/// Expand a Poisson failure process for one entity: exponential
/// inter-arrival times with mean `mtbf_s`, exponential outages with mean
/// `downtime_s` (<= 0 downtime means permanent).
void expand_churn(Rng& rng, double mtbf_s, double downtime_s, Nanos horizon,
                  std::vector<DownInterval>& out) {
  if (mtbf_s <= 0) return;
  double t_s = rng.exponential(1.0 / mtbf_s);
  while (seconds_to_nanos(t_s) < horizon) {
    const Nanos at = seconds_to_nanos(t_s);
    if (downtime_s <= 0) {
      out.push_back({at, CompiledPlan::kNever});
      return;
    }
    const double outage_s = rng.exponential(1.0 / downtime_s);
    out.push_back({at, at + seconds_to_nanos(outage_s)});
    t_s += outage_s + rng.exponential(1.0 / mtbf_s);
  }
}

}  // namespace

FaultPlan& FaultPlan::crash_stage(std::uint32_t stage, Nanos at,
                                  Nanos down_for) {
  stage_crashes.push_back({stage, at, down_for});
  return *this;
}

FaultPlan& FaultPlan::crash_aggregator(std::uint32_t aggregator, Nanos at,
                                       Nanos down_for) {
  aggregator_crashes.push_back({aggregator, at, down_for});
  return *this;
}

FaultPlan& FaultPlan::slow(std::uint32_t first, std::uint32_t last, Nanos from,
                           Nanos until, double multiplier) {
  slow_windows.push_back({first, last, from, until, multiplier});
  return *this;
}

FaultPlan& FaultPlan::partition(std::uint32_t first, std::uint32_t last,
                                Nanos from, Nanos until) {
  partitions.push_back({first, last, from, until});
  return *this;
}

bool FaultPlan::empty() const {
  return stage_crashes.empty() && aggregator_crashes.empty() &&
         slow_windows.empty() && partitions.empty() && stage_mtbf_s <= 0 &&
         aggregator_mtbf_s <= 0 && drop_probability <= 0 &&
         duplicate_probability <= 0 && delay_probability <= 0;
}

Status FaultPlan::validate() const {
  if (quorum <= 0.0 || quorum > 1.0) {
    return Status::invalid_argument("fault plan: quorum must be in (0, 1]");
  }
  if (phase_timeout <= Nanos{0}) {
    return Status::invalid_argument("fault plan: phase_timeout must be > 0");
  }
  const auto prob = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!prob(drop_probability) || !prob(duplicate_probability) ||
      !prob(delay_probability) ||
      drop_probability + duplicate_probability + delay_probability > 1.0) {
    return Status::invalid_argument(
        "fault plan: message-fault probabilities must be in [0,1] and sum "
        "to <= 1");
  }
  if (stage_mtbf_s < 0 || aggregator_mtbf_s < 0) {
    return Status::invalid_argument("fault plan: MTBF must be >= 0");
  }
  if (delay < Nanos{0}) {
    return Status::invalid_argument("fault plan: delay must be >= 0");
  }
  for (const SlowWindow& w : slow_windows) {
    if (w.multiplier < 1.0) {
      return Status::invalid_argument(
          "fault plan: slow-window multiplier must be >= 1");
    }
    if (w.last_stage < w.first_stage || w.until <= w.from) {
      return Status::invalid_argument("fault plan: malformed slow window");
    }
  }
  for (const PartitionWindow& w : partitions) {
    if (w.last_stage < w.first_stage || w.until <= w.from) {
      return Status::invalid_argument("fault plan: malformed partition");
    }
  }
  return Status::ok();
}

Result<FaultPlan> FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& why) -> Status {
    return Status::invalid_argument("fault plan line " +
                                    std::to_string(line_no) + ": " + why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream tok(line);
    std::string word;
    if (!(tok >> word)) continue;  // blank / comment-only line
    if (word == "seed") {
      if (!(tok >> plan.seed)) return fail("expected: seed <u64>");
    } else if (word == "quorum") {
      if (!(tok >> plan.quorum)) return fail("expected: quorum <fraction>");
    } else if (word == "timeout_ms") {
      double ms = 0;
      if (!(tok >> ms)) return fail("expected: timeout_ms <ms>");
      plan.phase_timeout = Nanos{static_cast<std::int64_t>(ms * 1e6)};
    } else if (word == "churn") {
      std::string tier, k1, k2;
      double mtbf = 0;
      double down = 0;
      if (!(tok >> tier >> k1 >> mtbf >> k2 >> down) || k1 != "mtbf_s" ||
          k2 != "downtime_s") {
        return fail("expected: churn stage|aggregator mtbf_s <s> downtime_s <s>");
      }
      if (tier == "stage") {
        plan.stage_mtbf_s = mtbf;
        plan.stage_downtime_s = down;
      } else if (tier == "aggregator") {
        plan.aggregator_mtbf_s = mtbf;
        plan.aggregator_downtime_s = down;
      } else {
        return fail("churn tier must be stage or aggregator");
      }
    } else if (word == "drop") {
      if (!(tok >> plan.drop_probability)) return fail("expected: drop <p>");
    } else if (word == "duplicate") {
      if (!(tok >> plan.duplicate_probability)) {
        return fail("expected: duplicate <p>");
      }
    } else if (word == "delay") {
      double us = 0;
      if (!(tok >> plan.delay_probability >> us)) {
        return fail("expected: delay <p> <extra latency µs>");
      }
      plan.delay = Nanos{static_cast<std::int64_t>(us * 1e3)};
    } else if (word == "crash") {
      std::string tier, k1, k2;
      std::uint32_t id = 0;
      double at_ms = 0;
      double for_ms = 0;
      if (!(tok >> tier >> id >> k1 >> at_ms >> k2 >> for_ms) ||
          k1 != "at_ms" || k2 != "for_ms") {
        return fail("expected: crash stage|aggregator <id> at_ms <ms> for_ms <ms>");
      }
      const Nanos at{static_cast<std::int64_t>(at_ms * 1e6)};
      const Nanos down{static_cast<std::int64_t>(for_ms * 1e6)};
      if (tier == "stage") {
        plan.crash_stage(id, at, down);
      } else if (tier == "aggregator") {
        plan.crash_aggregator(id, at, down);
      } else {
        return fail("crash tier must be stage or aggregator");
      }
    } else if (word == "slow") {
      std::uint32_t first = 0;
      std::uint32_t last = 0;
      std::string k1, k2, k3;
      double from_ms = 0;
      double until_ms = 0;
      double mult = 1.0;
      if (!(tok >> first >> last >> k1 >> from_ms >> k2 >> until_ms >> k3 >>
            mult) ||
          k1 != "from_ms" || k2 != "until_ms" || k3 != "x") {
        return fail(
            "expected: slow <first> <last> from_ms <ms> until_ms <ms> x <mult>");
      }
      plan.slow(first, last, Nanos{static_cast<std::int64_t>(from_ms * 1e6)},
                Nanos{static_cast<std::int64_t>(until_ms * 1e6)}, mult);
    } else if (word == "partition") {
      std::uint32_t first = 0;
      std::uint32_t last = 0;
      std::string k1, k2;
      double from_ms = 0;
      double until_ms = 0;
      if (!(tok >> first >> last >> k1 >> from_ms >> k2 >> until_ms) ||
          k1 != "from_ms" || k2 != "until_ms") {
        return fail("expected: partition <first> <last> from_ms <ms> until_ms <ms>");
      }
      plan.partition(first, last,
                     Nanos{static_cast<std::int64_t>(from_ms * 1e6)},
                     Nanos{static_cast<std::int64_t>(until_ms * 1e6)});
    } else {
      return fail("unknown directive '" + word + "'");
    }
  }
  SDS_RETURN_IF_ERROR(plan.validate());
  return plan;
}

Result<FaultPlan> FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("fault plan file: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  return parse(contents.str());
}

CompiledPlan CompiledPlan::compile(const FaultPlan& plan,
                                   std::size_t num_stages,
                                   std::size_t num_aggregators, Nanos horizon) {
  CompiledPlan compiled;
  compiled.seed_ = plan.seed;
  compiled.quorum_ = plan.quorum;
  compiled.phase_timeout_ = plan.phase_timeout;
  compiled.max_extensions_ = plan.max_deadline_extensions;
  compiled.drop_p_ = plan.drop_probability;
  compiled.dup_p_ = plan.duplicate_probability;
  compiled.delay_p_ = plan.delay_probability;
  compiled.delay_ = plan.delay;
  compiled.slow_windows_ = plan.slow_windows;
  compiled.partitions_ = plan.partitions;

  compiled.stage_down_.assign(num_stages, {});
  compiled.aggregator_down_.assign(num_aggregators, {});

  for (const StageCrash& crash : plan.stage_crashes) {
    if (crash.stage >= num_stages) continue;  // off-topology: ignore
    const Nanos until =
        crash.down_for > Nanos{0} ? crash.at + crash.down_for : kNever;
    compiled.stage_down_[crash.stage].push_back({crash.at, until});
  }
  for (const AggregatorCrash& crash : plan.aggregator_crashes) {
    if (crash.aggregator >= num_aggregators) continue;
    const Nanos until =
        crash.down_for > Nanos{0} ? crash.at + crash.down_for : kNever;
    compiled.aggregator_down_[crash.aggregator].push_back({crash.at, until});
  }

  // Churn expansion: one split RNG stream per entity, derived from
  // (seed, tier, id) — independent of lane count and of every other
  // entity's stream.
  if (plan.stage_mtbf_s > 0) {
    for (std::size_t i = 0; i < num_stages; ++i) {
      Rng rng(SplitMix64(plan.seed ^ (0xA11CE5ULL + i)).next());
      expand_churn(rng, plan.stage_mtbf_s, plan.stage_downtime_s, horizon,
                   compiled.stage_down_[i]);
    }
  }
  if (plan.aggregator_mtbf_s > 0) {
    for (std::size_t a = 0; a < num_aggregators; ++a) {
      Rng rng(SplitMix64(plan.seed ^ (0xB0B0ULL + (a << 20))).next());
      expand_churn(rng, plan.aggregator_mtbf_s, plan.aggregator_downtime_s,
                   horizon, compiled.aggregator_down_[a]);
    }
  }

  for (auto& intervals : compiled.stage_down_) {
    intervals = normalize(std::move(intervals));
    compiled.total_outages_ += intervals.size();
  }
  for (auto& intervals : compiled.aggregator_down_) {
    intervals = normalize(std::move(intervals));
    compiled.total_outages_ += intervals.size();
  }
  return compiled;
}

bool CompiledPlan::up_at(const std::vector<DownInterval>& intervals, Nanos t) {
  // First interval starting after t; the one before it is the only
  // candidate cover.
  auto it = std::upper_bound(
      intervals.begin(), intervals.end(), t,
      [](Nanos value, const DownInterval& iv) { return value < iv.from; });
  if (it == intervals.begin()) return true;
  --it;
  return t >= it->until;
}

bool CompiledPlan::stage_up(std::size_t stage, Nanos t) const {
  return stage >= stage_down_.size() || up_at(stage_down_[stage], t);
}

bool CompiledPlan::aggregator_up(std::size_t aggregator, Nanos t) const {
  return aggregator >= aggregator_down_.size() ||
         up_at(aggregator_down_[aggregator], t);
}

bool CompiledPlan::partitioned(std::size_t stage, Nanos t) const {
  for (const PartitionWindow& w : partitions_) {
    if (stage >= w.first_stage && stage <= w.last_stage && t >= w.from &&
        t < w.until) {
      return true;
    }
  }
  return false;
}

double CompiledPlan::service_multiplier(std::size_t stage, Nanos t) const {
  double multiplier = 1.0;
  for (const SlowWindow& w : slow_windows_) {
    if (stage >= w.first_stage && stage <= w.last_stage && t >= w.from &&
        t < w.until) {
      multiplier = std::max(multiplier, w.multiplier);
    }
  }
  return multiplier;
}

MessageFate CompiledPlan::message_fate(MessageKind kind, std::uint64_t cycle,
                                       std::uint64_t entity) const {
  if (drop_p_ <= 0 && dup_p_ <= 0 && delay_p_ <= 0) return MessageFate::kDeliver;
  const double u =
      hash01(seed_, static_cast<std::uint64_t>(kind), cycle, entity);
  if (u < drop_p_) return MessageFate::kDrop;
  if (u < drop_p_ + dup_p_) return MessageFate::kDuplicate;
  if (u < drop_p_ + dup_p_ + delay_p_) return MessageFate::kDelay;
  return MessageFate::kDeliver;
}

Nanos CompiledPlan::last_stage_restart_before(std::size_t stage,
                                              Nanos t) const {
  if (stage >= stage_down_.size()) return Nanos{-1};
  const std::vector<DownInterval>& intervals = stage_down_[stage];
  Nanos restart{-1};
  for (const DownInterval& iv : intervals) {
    if (iv.until == kNever || iv.until > t) break;
    restart = iv.until;
  }
  return restart;
}

std::size_t CompiledPlan::quorum_count(std::size_t expected) const {
  if (expected == 0) return 0;
  const auto count =
      static_cast<std::size_t>(std::ceil(quorum_ * static_cast<double>(expected)));
  return std::min(std::max<std::size_t>(count, 1), expected);
}

}  // namespace sds::fault
