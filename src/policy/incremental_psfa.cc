#include "policy/incremental_psfa.h"

#include <algorithm>

namespace sds::policy {

namespace {

bool same_inputs(const std::vector<JobDemand>& cached,
                 std::span<const JobDemand> demands, double cached_budget,
                 double budget) {
  if (cached_budget != budget) return false;
  if (cached.size() != demands.size()) return false;
  return std::equal(cached.begin(), cached.end(), demands.begin());
}

}  // namespace

// sdslint: hotpath — per-cycle allocation decision; cache hits replay
// the stored vector and entry buffers are reused via assign, so nothing
// allocates once the cache slots are warm.
void IncrementalPsfa::compute(std::span<const JobDemand> demands,
                              double budget,
                              std::vector<JobAllocation>& out) const {
  for (const Entry& entry : cache_) {
    if (entry.valid && same_inputs(entry.demands, demands, entry.budget,
                                   budget)) {
      ++hits_;
      out.assign(entry.allocations.begin(), entry.allocations.end());
      return;
    }
  }
  ++misses_;
  inner_->compute(demands, budget, out);
  Entry& slot = cache_[next_slot_];
  next_slot_ = (next_slot_ + 1) % kCacheEntries;
  slot.demands.assign(demands.begin(), demands.end());
  slot.budget = budget;
  slot.allocations.assign(out.begin(), out.end());
  slot.valid = true;
}
// sdslint: end-hotpath

}  // namespace sds::policy
