// Control-algorithm interface: map per-job I/O demands to per-job
// allocations under a global budget (the PFS's maximum sustainable rate,
// set by system administrators).
//
// Algorithms operate on one metric dimension at a time (data IOPS or
// metadata IOPS); the controller core runs them once per dimension.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace sds::policy {

/// A job's observed demand for one metric dimension.
struct JobDemand {
  JobId job_id;
  /// Observed operation rate (ops/s) the job is currently submitting.
  double demand = 0;
  /// QoS weight; jobs receive budget proportionally to weight when
  /// contended. Must be > 0.
  double weight = 1.0;

  bool operator==(const JobDemand&) const = default;
};

/// Resulting allocation for one job.
struct JobAllocation {
  JobId job_id;
  /// Granted operation rate (ops/s); stages enforce this via rate limits.
  double allocation = 0;

  bool operator==(const JobAllocation&) const = default;
};

class ControlAlgorithm {
 public:
  virtual ~ControlAlgorithm() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Compute allocations for `demands` under total `budget` (ops/s).
  /// Postcondition: out has one entry per input job (same order) and the
  /// allocations sum to at most `budget` (within floating-point slack).
  virtual void compute(std::span<const JobDemand> demands, double budget,
                       std::vector<JobAllocation>& out) const = 0;
};

}  // namespace sds::policy
