#include "policy/baselines.h"

#include <algorithm>
#include <numeric>

namespace sds::policy {

void StaticPartition::compute(std::span<const JobDemand> demands, double budget,
                              std::vector<JobAllocation>& out) const {
  out.clear();
  out.reserve(demands.size());
  budget = std::max(0.0, budget);
  double weight_sum = 0;
  for (const auto& d : demands) weight_sum += std::max(d.weight, 0.0);
  for (const auto& d : demands) {
    const double share =
        weight_sum > 0 ? budget * std::max(d.weight, 0.0) / weight_sum : 0.0;
    out.push_back({d.job_id, share});
  }
}

void UniformShare::compute(std::span<const JobDemand> demands, double budget,
                           std::vector<JobAllocation>& out) const {
  out.clear();
  out.reserve(demands.size());
  budget = std::max(0.0, budget);
  std::size_t active = 0;
  for (const auto& d : demands) {
    if (d.demand >= activity_threshold_) ++active;
  }
  const double share = active > 0 ? budget / static_cast<double>(active) : 0.0;
  for (const auto& d : demands) {
    out.push_back(
        {d.job_id, d.demand >= activity_threshold_ ? share : 0.0});
  }
}

void PriorityWaterfill::compute(std::span<const JobDemand> demands, double budget,
                                std::vector<JobAllocation>& out) const {
  out.clear();
  out.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    out[i] = {demands[i].job_id, 0.0};
  }
  budget = std::max(0.0, budget);

  std::vector<std::size_t> order(demands.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return demands[a].weight > demands[b].weight;
  });

  double remaining = budget;
  for (const std::size_t i : order) {
    const double grant = std::min(std::max(demands[i].demand, 0.0), remaining);
    out[i].allocation = grant;
    remaining -= grant;
    if (remaining <= 0) break;
  }
}

}  // namespace sds::policy
