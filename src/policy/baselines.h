// Baseline control algorithms the study's PSFA is compared against in
// ablations: static weighted partitioning (has "false allocation"),
// uniform sharing among active jobs, and strict-priority water-filling.
#pragma once

#include "policy/algorithm.h"

namespace sds::policy {

/// Splits the budget proportionally to weight regardless of demand.
/// Simple and stateless, but wastes budget on idle jobs (the false
/// allocation PSFA eliminates).
class StaticPartition final : public ControlAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const override { return "static"; }

  void compute(std::span<const JobDemand> demands, double budget,
               std::vector<JobAllocation>& out) const override;
};

/// Equal share of the budget for every active job, demand-capped.
class UniformShare final : public ControlAlgorithm {
 public:
  explicit UniformShare(double activity_threshold = 1.0)
      : activity_threshold_(activity_threshold) {}

  [[nodiscard]] std::string_view name() const override { return "uniform"; }

  void compute(std::span<const JobDemand> demands, double budget,
               std::vector<JobAllocation>& out) const override;

 private:
  double activity_threshold_;
};

/// Strict priority: jobs are served in descending weight order; each is
/// granted min(demand, remaining budget). Starvation-prone by design —
/// included as the adversarial baseline.
class PriorityWaterfill final : public ControlAlgorithm {
 public:
  [[nodiscard]] std::string_view name() const override { return "priority"; }

  void compute(std::span<const JobDemand> demands, double budget,
               std::vector<JobAllocation>& out) const override;
};

}  // namespace sds::policy
