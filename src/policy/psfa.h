// PSFA — proportional sharing without false allocation (Cheferd's control
// algorithm, the one executed by the paper's global controller in every
// control cycle).
//
// Semantics:
//  * Jobs whose observed demand is below `activity_threshold` are
//    *inactive*: they receive only a small probe allocation (so they can
//    ramp back up) instead of their full proportional share — this is the
//    "without false allocation" part: budget is not wasted on jobs that
//    will not use it.
//  * Active jobs share the remaining budget proportionally to weight,
//    capped at `headroom × demand` (a job may grow a bit past its current
//    rate before the next cycle reacts). Budget left by capped jobs is
//    re-distributed to still-uncapped jobs by weight (water-filling), so
//    the algorithm is work-conserving and never over-provisions: the sum
//    of allocations never exceeds the budget.
#pragma once

#include "policy/algorithm.h"

namespace sds::policy {

struct PsfaOptions {
  /// Demands below this rate (ops/s) mark a job inactive.
  double activity_threshold = 1.0;
  /// Active jobs may be granted up to headroom × demand.
  double headroom = 1.2;
  /// Fraction of the budget reserved per inactive job as a probe
  /// allocation (lets an idle job issue enough requests to re-activate).
  double probe_fraction = 0.001;
  /// When false, active jobs are not demand-capped (pure weighted
  /// proportional sharing among active jobs).
  bool demand_capped = true;
};

class Psfa final : public ControlAlgorithm {
 public:
  explicit Psfa(PsfaOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string_view name() const override { return "psfa"; }

  void compute(std::span<const JobDemand> demands, double budget,
               std::vector<JobAllocation>& out) const override;

  [[nodiscard]] const PsfaOptions& options() const { return options_; }

 private:
  PsfaOptions options_;
};

}  // namespace sds::policy
