// PolicySpec — administrator-facing QoS policy: the PFS budgets, per-job
// weights, and PSFA tuning, parsed from key=value text (file or CLI):
//
//   budget.data_iops = 1000000
//   budget.meta_iops = 500000
//   job.3.weight     = 2.5        # job 3 gets 2.5x shares
//   psfa.headroom    = 1.5
//   psfa.activity_threshold = 1.0
//   psfa.probe_fraction = 0.001
#pragma once

#include <cstdint>
#include <map>

#include "common/config.h"
#include "policy/psfa.h"

namespace sds::policy {

struct PolicySpec {
  double data_budget = 1'000'000;
  double meta_budget = 500'000;
  PsfaOptions psfa{};
  /// JobId value -> weight.
  std::map<std::uint32_t, double> job_weights;

  [[nodiscard]] static Result<PolicySpec> from_config(const Config& config);
  [[nodiscard]] static Result<PolicySpec> from_file(const std::string& path);

  /// Serialize back to the text format (round-trips through
  /// from_config).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace sds::policy
