#include "policy/psfa.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sds::policy {

void Psfa::compute(std::span<const JobDemand> demands, double budget,
                   std::vector<JobAllocation>& out) const {
  out.clear();
  out.reserve(demands.size());
  if (demands.empty()) return;
  budget = std::max(0.0, budget);

  // Pass 1: hand inactive jobs their probe allocation.
  const double probe = options_.probe_fraction * budget;
  double remaining = budget;
  std::size_t active_count = 0;
  for (const auto& d : demands) {
    const bool active = d.demand >= options_.activity_threshold;
    if (active) {
      ++active_count;
      out.push_back({d.job_id, 0.0});
    } else {
      const double grant = std::min(probe, remaining);
      remaining -= grant;
      out.push_back({d.job_id, grant});
    }
  }
  if (active_count == 0 || remaining <= 0) return;

  if (!options_.demand_capped) {
    // Pure weighted proportional sharing among active jobs.
    double weight_sum = 0;
    for (const auto& d : demands) {
      if (d.demand >= options_.activity_threshold) weight_sum += d.weight;
    }
    if (weight_sum <= 0) return;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (demands[i].demand >= options_.activity_threshold) {
        out[i].allocation = remaining * demands[i].weight / weight_sum;
      }
    }
    return;
  }

  // Pass 2: weighted water-filling over active jobs with caps of
  // headroom × demand. Each round grants every unsatisfied job its
  // weighted share; jobs whose cap is below the share are frozen at the
  // cap and their leftover re-enters the pool. Terminates in at most
  // `active_count` rounds because every round freezes >= 1 job or exits.
  struct Entry {
    std::size_t index;   // position in `out`
    double cap;
    double weight;
    bool satisfied = false;
  };
  std::vector<Entry> entries;
  entries.reserve(active_count);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& d = demands[i];
    if (d.demand >= options_.activity_threshold) {
      entries.push_back({i, d.demand * options_.headroom,
                         std::max(d.weight, 1e-12), false});
    }
  }

  std::size_t unsatisfied = entries.size();
  while (unsatisfied > 0 && remaining > 1e-9) {
    double weight_sum = 0;
    for (const auto& e : entries) {
      if (!e.satisfied) weight_sum += e.weight;
    }
    assert(weight_sum > 0);

    bool froze_any = false;
    const double pool = remaining;
    for (auto& e : entries) {
      if (e.satisfied) continue;
      const double share = pool * e.weight / weight_sum;
      const double current = out[e.index].allocation;
      if (current + share >= e.cap) {
        // Cap reached: freeze at cap, return the unused slice to the pool.
        remaining -= (e.cap - current);
        out[e.index].allocation = e.cap;
        e.satisfied = true;
        --unsatisfied;
        froze_any = true;
      }
    }
    if (froze_any) continue;  // re-share the returned budget

    // No job capped out: distribute the whole pool by weight and finish.
    for (auto& e : entries) {
      if (e.satisfied) continue;
      out[e.index].allocation += pool * e.weight / weight_sum;
      e.satisfied = true;
      --unsatisfied;
    }
    remaining = 0;
  }
}

}  // namespace sds::policy
