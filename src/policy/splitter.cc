#include "policy/splitter.h"

#include <algorithm>

namespace sds::policy {

void RuleSplitter::split(std::span<const JobAllocation> allocations,
                         std::span<const StageDemand> stages,
                         std::vector<StageLimit>& out) const {
  out.clear();
  out.reserve(stages.size());

  struct JobAgg {
    double allocation = 0;
    double demand_sum = 0;
    std::uint32_t stage_count = 0;
    bool known = false;
  };
  std::unordered_map<JobId, JobAgg> jobs;
  jobs.reserve(allocations.size());
  for (const auto& a : allocations) {
    auto& agg = jobs[a.job_id];
    agg.allocation = a.allocation;
    agg.known = true;
  }
  for (const auto& s : stages) {
    auto& agg = jobs[s.job_id];
    agg.demand_sum += std::max(s.demand, 0.0);
    ++agg.stage_count;
  }

  for (const auto& s : stages) {
    const auto& agg = jobs[s.job_id];
    double limit = 0;
    if (agg.known && agg.stage_count > 0) {
      const bool proportional = strategy_ == SplitStrategy::kProportional &&
                                agg.demand_sum > 0;
      if (proportional) {
        limit = agg.allocation * std::max(s.demand, 0.0) / agg.demand_sum;
      } else {
        limit = agg.allocation / static_cast<double>(agg.stage_count);
      }
    }
    out.push_back({s.stage_id, limit});
  }
}

}  // namespace sds::policy
