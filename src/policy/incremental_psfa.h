// IncrementalPsfa — memoizing wrapper that makes PSFA's water-filling
// incremental behind the unchanged ControlAlgorithm interface.
//
// PSFA's output is a pure function of (demands, budget). Across
// control cycles of a steady system the inputs repeat — most cycles no
// job's demand moves past the store's activity threshold — so the
// wrapper keeps the last few (input, output) pairs and replays the
// cached allocation vector on an exact input match instead of re-running
// the weighted water-filling rounds. Only when the inputs differ (the
// active set or the capped set CAN have changed) does the inner
// algorithm run.
//
// Correctness: a hit replays bytes the inner algorithm itself produced
// for identical inputs, so results are bit-identical to always
// recomputing — asserted by the property tests and the
// --psfa-full-recompute bench ablation.
//
// The cache holds kCacheEntries slots (default 2: the controller core
// alternates data- and metadata-dimension calls with different budgets,
// which would thrash a single slot). Replacement is round-robin.
//
// Not thread-safe: callers serialize (the simulator is single-threaded
// per lane; the live global server computes under its own mutex).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "policy/algorithm.h"
#include "policy/psfa.h"

namespace sds::policy {

class IncrementalPsfa final : public ControlAlgorithm {
 public:
  static constexpr std::size_t kCacheEntries = 2;

  explicit IncrementalPsfa(PsfaOptions options = {})
      : inner_(std::make_unique<Psfa>(options)) {}
  /// Wrap an arbitrary inner algorithm (it must be deterministic).
  explicit IncrementalPsfa(std::unique_ptr<ControlAlgorithm> inner)
      : inner_(std::move(inner)) {}

  [[nodiscard]] std::string_view name() const override {
    return "incremental-psfa";
  }

  void compute(std::span<const JobDemand> demands, double budget,
               std::vector<JobAllocation>& out) const override;

  [[nodiscard]] const ControlAlgorithm& inner() const { return *inner_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::vector<JobDemand> demands;
    double budget = 0;
    std::vector<JobAllocation> allocations;
    bool valid = false;
  };

  std::unique_ptr<ControlAlgorithm> inner_;
  mutable Entry cache_[kCacheEntries];
  mutable std::size_t next_slot_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace sds::policy
