// Turn per-job allocations into per-stage rate limits.
//
// A job spans many stages (one per compute node it runs on). The
// controller must split the job-level grant into stage-level limits that
// the data plane can enforce locally. Two strategies:
//   * kUniform      — grant / stage_count for every stage
//   * kProportional — split by each stage's share of the job's demand
//                     (stages that submit more I/O get more budget),
//                     falling back to uniform when the job is idle.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "policy/algorithm.h"

namespace sds::policy {

enum class SplitStrategy { kUniform, kProportional };

/// One stage's share of a metric dimension as seen at collect time.
struct StageDemand {
  StageId stage_id;
  JobId job_id;
  double demand = 0;

  bool operator==(const StageDemand&) const = default;
};

/// Per-stage limit for one metric dimension.
struct StageLimit {
  StageId stage_id;
  double limit = 0;

  bool operator==(const StageLimit&) const = default;
};

class RuleSplitter {
 public:
  explicit RuleSplitter(SplitStrategy strategy = SplitStrategy::kProportional)
      : strategy_(strategy) {}

  /// Split `allocations` (per job) across `stages`; stages of jobs absent
  /// from `allocations` receive a zero limit. Output order matches the
  /// `stages` input order. The per-job sum of limits equals the job's
  /// allocation (within floating-point slack).
  void split(std::span<const JobAllocation> allocations,
             std::span<const StageDemand> stages,
             std::vector<StageLimit>& out) const;

  [[nodiscard]] SplitStrategy strategy() const { return strategy_; }

 private:
  SplitStrategy strategy_;
};

}  // namespace sds::policy
