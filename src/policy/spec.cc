#include "policy/spec.h"

#include <charconv>
#include <sstream>

namespace sds::policy {

Result<PolicySpec> PolicySpec::from_config(const Config& config) {
  PolicySpec spec;
  spec.data_budget = config.get_double_or("budget.data_iops", spec.data_budget);
  spec.meta_budget = config.get_double_or("budget.meta_iops", spec.meta_budget);
  spec.psfa.headroom = config.get_double_or("psfa.headroom", spec.psfa.headroom);
  spec.psfa.activity_threshold = config.get_double_or(
      "psfa.activity_threshold", spec.psfa.activity_threshold);
  spec.psfa.probe_fraction =
      config.get_double_or("psfa.probe_fraction", spec.psfa.probe_fraction);
  spec.psfa.demand_capped =
      config.get_bool_or("psfa.demand_capped", spec.psfa.demand_capped);

  if (spec.data_budget < 0 || spec.meta_budget < 0) {
    return Status::invalid_argument("budgets must be non-negative");
  }
  if (spec.psfa.headroom < 1.0) {
    return Status::invalid_argument("psfa.headroom must be >= 1");
  }
  if (spec.psfa.probe_fraction < 0 || spec.psfa.probe_fraction > 1) {
    return Status::invalid_argument("psfa.probe_fraction must be in [0, 1]");
  }

  for (const auto& [key, value] : config.entries()) {
    // job.<id>.weight = <double>
    constexpr std::size_t kPrefix = 4;                      // "job."
    constexpr std::size_t kSuffix = sizeof(".weight") - 1;  // 7
    if (!key.starts_with("job.") || !key.ends_with(".weight") ||
        key.size() <= kPrefix + kSuffix) {
      continue;
    }
    const std::string_view id_text{key.data() + kPrefix,
                                   key.size() - kPrefix - kSuffix};
    std::uint32_t job = 0;
    const auto [ptr, ec] =
        std::from_chars(id_text.data(), id_text.data() + id_text.size(), job);
    if (ec != std::errc{} || ptr != id_text.data() + id_text.size()) {
      return Status::invalid_argument("bad job id in key: " + key);
    }
    const auto weight = config.get_double(key);
    if (!weight.is_ok()) return weight.status();
    if (*weight <= 0) {
      return Status::invalid_argument(key + ": weight must be > 0");
    }
    spec.job_weights[job] = *weight;
  }
  return spec;
}

Result<PolicySpec> PolicySpec::from_file(const std::string& path) {
  auto config = Config::from_file(path);
  if (!config.is_ok()) return config.status();
  return from_config(*config);
}

std::string PolicySpec::to_string() const {
  std::ostringstream out;
  out.precision(12);
  out << "budget.data_iops = " << data_budget << '\n';
  out << "budget.meta_iops = " << meta_budget << '\n';
  out << "psfa.headroom = " << psfa.headroom << '\n';
  out << "psfa.activity_threshold = " << psfa.activity_threshold << '\n';
  out << "psfa.probe_fraction = " << psfa.probe_fraction << '\n';
  out << "psfa.demand_capped = " << (psfa.demand_capped ? "true" : "false")
      << '\n';
  for (const auto& [job, weight] : job_weights) {
    out << "job." << job << ".weight = " << weight << '\n';
  }
  return out.str();
}

}  // namespace sds::policy
