// In-process transport: endpoints in the same process exchange frames via
// per-endpoint delivery threads and thread-safe queues. Used by unit and
// integration tests and by single-machine live deployments.
//
// Semantics match the TCP transport: per-endpoint connection caps,
// ordered delivery per connection, connection-closed events on both ends,
// byte counters based on real encoded frame sizes.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "transport/transport.h"

namespace sds::transport {

namespace detail {
class InProcCore;
}

class InProcNetwork final : public Network {
 public:
  InProcNetwork() = default;
  ~InProcNetwork() override;

  InProcNetwork(const InProcNetwork&) = delete;
  InProcNetwork& operator=(const InProcNetwork&) = delete;

  Result<std::unique_ptr<Endpoint>> bind(const std::string& address,
                                         const EndpointOptions& options) override;

 private:
  friend class detail::InProcCore;

  std::shared_ptr<detail::InProcCore> lookup(const std::string& address)
      SDS_EXCLUDES(mu_);
  /// Release `address` when its registry entry still refers to `core`
  /// (or is already dead). Called by a stopping core: the entry must go
  /// away even while Endpoint objects keep the core alive — a crashed
  /// server whose owner still holds the endpoint must not block a
  /// restart from rebinding the address.
  void unbind(const std::string& address, const detail::InProcCore* core)
      SDS_EXCLUDES(mu_);

  Mutex mu_{LockRank::kTransportNetwork};
  std::unordered_map<std::string, std::weak_ptr<detail::InProcCore>> registry_
      SDS_GUARDED_BY(mu_);
};

}  // namespace sds::transport
