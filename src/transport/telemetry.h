// Bridges a transport::Endpoint's counter block into a
// telemetry::MetricsRegistry: a snapshot-time collector publishes the
// cumulative byte/message/connection counters as
// `sds_transport_*{component=...}` gauges, so Tables II–IV bandwidth
// accounting and live dashboards read the exact same counters.
#pragma once

#include <string>

#include "telemetry/metrics.h"
#include "transport/transport.h"

namespace sds::transport {

/// Register a collector that refreshes the endpoint's counters on every
/// registry snapshot. `endpoint` must outlive the registry's last
/// snapshot(); it may be the same endpoint across multiple components only
/// if `labels` differ (instruments are keyed by name + labels).
void bind_endpoint_metrics(telemetry::MetricsRegistry& registry,
                           const Endpoint* endpoint,
                           telemetry::Labels labels = {});

}  // namespace sds::transport
