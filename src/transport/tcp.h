// TCP transport: length-prefixed wire::Frame streams over non-blocking
// sockets driven by a per-endpoint epoll event loop.
//
// Addresses are "host:port"; binding to port 0 picks an ephemeral port and
// address() reports the actual one. All handler callbacks run on the
// endpoint's event-loop thread (single delivery thread contract).
#pragma once

#include <memory>
#include <string>

#include "transport/transport.h"

namespace sds::transport {

class TcpNetwork final : public Network {
 public:
  Result<std::unique_ptr<Endpoint>> bind(const std::string& address,
                                         const EndpointOptions& options) override;
};

}  // namespace sds::transport
