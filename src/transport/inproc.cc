#include "transport/inproc.h"

#include <thread>
#include <utility>
#include <vector>

#include "common/log.h"
#include "common/mutex.h"
#include "common/queue.h"
#include "common/thread_annotations.h"

namespace sds::transport {

namespace detail {

/// Shared state for one in-process endpoint. Endpoint wrappers and remote
/// peers hold shared_ptrs, so a core outlives concurrent senders even if
/// its Endpoint has been destroyed.
class InProcCore : public std::enable_shared_from_this<InProcCore> {
 public:
  InProcCore(InProcNetwork* network, std::string address,
             const EndpointOptions& options)
      : network_(network), address_(std::move(address)), options_(options) {}

  ~InProcCore() { stop(); }

  void start() {
    delivery_thread_ = std::thread([this] { delivery_loop(); });
  }

  const std::string& address() const { return address_; }

  void set_frame_handler(FrameHandler handler) {
    MutexLock lock(mu_);
    frame_handler_ = std::move(handler);
  }

  void set_conn_handler(ConnEventHandler handler) {
    MutexLock lock(mu_);
    conn_handler_ = std::move(handler);
  }

  Result<ConnId> connect(const std::string& peer_address) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::unavailable("endpoint shut down");
    }
    auto peer = network_->lookup(peer_address);
    if (!peer) return Status::not_found("no endpoint at " + peer_address);

    if (!try_reserve_slot()) {
      counters_.on_reject();
      return Status::resource_exhausted("local connection cap reached");
    }
    if (!peer->try_reserve_slot()) {
      release_slot();
      peer->counters_.on_reject();
      return Status::resource_exhausted("peer connection cap reached at " +
                                        peer_address);
    }

    const ConnId local_id = next_conn_id();
    const ConnId remote_id = peer->next_conn_id();
    {
      MutexLock lock(mu_);
      conns_[local_id] = Peer{peer, remote_id};
    }
    {
      MutexLock lock(peer->mu_);
      peer->conns_[remote_id] = Peer{shared_from_this(), local_id};
    }
    counters_.on_dial();
    peer->counters_.on_accept();
    enqueue_conn_event(local_id, ConnEvent::kOpened);
    peer->enqueue_conn_event(remote_id, ConnEvent::kOpened);
    return local_id;
  }

  Status send(ConnId conn, wire::Frame frame) {
    std::shared_ptr<InProcCore> peer;
    ConnId remote_id;
    {
      MutexLock lock(mu_);
      const auto it = conns_.find(conn);
      if (it == conns_.end()) return Status::unavailable("connection closed");
      peer = it->second.core;
      remote_id = it->second.remote_conn;
    }
    const std::size_t size = frame.wire_size();
    if (!peer->enqueue_frame(remote_id, std::move(frame))) {
      return Status::unavailable("peer shut down");
    }
    counters_.on_send(size);
    peer->counters_.on_receive(size);
    return Status::ok();
  }

  /// Zero-copy send: the queue carries a reference to the shared wire
  /// image; the single payload copy happens on the receiving side at
  /// delivery (the copy a real NIC would make).
  Status send_shared(ConnId conn, const wire::SharedFrame& frame) {
    std::shared_ptr<InProcCore> peer;
    ConnId remote_id;
    {
      MutexLock lock(mu_);
      const auto it = conns_.find(conn);
      if (it == conns_.end()) return Status::unavailable("connection closed");
      peer = it->second.core;
      remote_id = it->second.remote_conn;
    }
    const std::size_t size = frame.wire_size();
    if (!peer->enqueue_shared(remote_id, frame)) {
      return Status::unavailable("peer shut down");
    }
    counters_.on_send(size);
    peer->counters_.on_receive(size);
    return Status::ok();
  }

  void close(ConnId conn) { close_impl(conn, /*notify_self=*/true); }

  void stop() {
    if (closed_.exchange(true, std::memory_order_acq_rel)) {
      if (delivery_thread_.joinable()) delivery_thread_.join();
      return;
    }
    // Close every remaining connection (notifies peers).
    std::vector<ConnId> open;
    {
      MutexLock lock(mu_);
      open.reserve(conns_.size());
      for (const auto& [id, _] : conns_) open.push_back(id);
    }
    for (const ConnId id : open) close_impl(id, /*notify_self=*/false);
    queue_.close();
    if (delivery_thread_.joinable()) delivery_thread_.join();
    network_->unbind(address_, this);
  }

  Counters counters() const { return counters_.snapshot(); }

 private:
  struct Peer {
    std::shared_ptr<InProcCore> core;
    ConnId remote_conn;
  };

  struct Event {
    ConnId conn;
    bool is_frame = false;
    wire::Frame frame;
    wire::SharedFrame shared;  // set instead of `frame` for shared sends
    ConnEvent conn_event = ConnEvent::kOpened;
  };

  ConnId next_conn_id() {
    return ConnId{next_conn_.fetch_add(1, std::memory_order_relaxed)};
  }

  bool try_reserve_slot() {
    if (options_.max_connections == 0) {
      slots_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    std::size_t current = slots_.load(std::memory_order_relaxed);
    while (current < options_.max_connections) {
      if (slots_.compare_exchange_weak(current, current + 1,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void release_slot() { slots_.fetch_sub(1, std::memory_order_relaxed); }

  bool enqueue_frame(ConnId conn, wire::Frame frame) {
    Event ev;
    ev.conn = conn;
    ev.is_frame = true;
    ev.frame = std::move(frame);
    return queue_.push(std::move(ev));
  }

  bool enqueue_shared(ConnId conn, const wire::SharedFrame& frame) {
    Event ev;
    ev.conn = conn;
    ev.is_frame = true;
    ev.shared = frame;  // ref-count bump, no payload copy
    return queue_.push(std::move(ev));
  }

  void enqueue_conn_event(ConnId conn, ConnEvent event) {
    Event ev;
    ev.conn = conn;
    ev.conn_event = event;
    queue_.push(std::move(ev));
  }

  void close_impl(ConnId conn, bool notify_self) {
    std::shared_ptr<InProcCore> peer;
    ConnId remote_id;
    {
      MutexLock lock(mu_);
      const auto it = conns_.find(conn);
      if (it == conns_.end()) return;
      peer = it->second.core;
      remote_id = it->second.remote_conn;
      conns_.erase(it);
    }
    release_slot();
    counters_.on_close();
    if (notify_self) enqueue_conn_event(conn, ConnEvent::kClosed);
    peer->on_peer_closed(remote_id);
  }

  void on_peer_closed(ConnId conn) {
    {
      MutexLock lock(mu_);
      if (conns_.erase(conn) == 0) return;
    }
    release_slot();
    counters_.on_close();
    enqueue_conn_event(conn, ConnEvent::kClosed);
  }

  void delivery_loop() {
    while (auto ev = queue_.pop()) {
      FrameHandler frame_handler;
      ConnEventHandler conn_handler;
      {
        MutexLock lock(mu_);
        frame_handler = frame_handler_;
        conn_handler = conn_handler_;
      }
      if (ev->is_frame) {
        if (frame_handler) {
          // Shared frames materialize here: one payload copy, receiver-side.
          frame_handler(ev->conn, ev->shared.empty() ? std::move(ev->frame)
                                                     : ev->shared.to_frame());
        } else {
          SDS_LOG(WARN) << address_ << ": frame dropped (no handler)";
        }
      } else if (conn_handler) {
        conn_handler(ev->conn, ev->conn_event);
      }
    }
  }

  InProcNetwork* network_;
  const std::string address_;
  const EndpointOptions options_;

  Mutex mu_{LockRank::kTransportEndpoint};
  FrameHandler frame_handler_ SDS_GUARDED_BY(mu_);
  ConnEventHandler conn_handler_ SDS_GUARDED_BY(mu_);
  std::unordered_map<ConnId, Peer> conns_ SDS_GUARDED_BY(mu_);

  Queue<Event> queue_;
  std::thread delivery_thread_;
  std::atomic<std::uint64_t> next_conn_{1};
  std::atomic<std::size_t> slots_{0};
  std::atomic<bool> closed_{false};
  CounterBlock counters_;
};

namespace {

/// Thin Endpoint adapter over a shared core.
class InProcEndpoint final : public Endpoint {
 public:
  explicit InProcEndpoint(std::shared_ptr<InProcCore> core)
      : core_(std::move(core)) {}

  ~InProcEndpoint() override { core_->stop(); }

  const std::string& address() const override { return core_->address(); }
  void set_frame_handler(FrameHandler handler) override {
    core_->set_frame_handler(std::move(handler));
  }
  void set_conn_handler(ConnEventHandler handler) override {
    core_->set_conn_handler(std::move(handler));
  }
  Result<ConnId> connect(const std::string& peer_address) override {
    return core_->connect(peer_address);
  }
  Status send(ConnId conn, wire::Frame frame) override {
    return core_->send(conn, std::move(frame));
  }
  Status send_shared(ConnId conn, const wire::SharedFrame& frame) override {
    return core_->send_shared(conn, frame);
  }
  void close(ConnId conn) override { core_->close(conn); }
  void shutdown() override { core_->stop(); }
  Counters counters() const override { return core_->counters(); }

 private:
  std::shared_ptr<InProcCore> core_;
};

}  // namespace

}  // namespace detail

InProcNetwork::~InProcNetwork() = default;

Result<std::unique_ptr<Endpoint>> InProcNetwork::bind(
    const std::string& address, const EndpointOptions& options) {
  auto core = std::make_shared<detail::InProcCore>(this, address, options);
  {
    MutexLock lock(mu_);
    auto [it, inserted] = registry_.try_emplace(address, core);
    if (!inserted) {
      if (!it->second.expired()) {
        return Status::already_exists("address in use: " + address);
      }
      it->second = core;
    }
  }
  core->start();
  return std::unique_ptr<Endpoint>(new detail::InProcEndpoint(std::move(core)));
}

std::shared_ptr<detail::InProcCore> InProcNetwork::lookup(
    const std::string& address) {
  MutexLock lock(mu_);
  const auto it = registry_.find(address);
  return it == registry_.end() ? nullptr : it->second.lock();
}

void InProcNetwork::unbind(const std::string& address,
                           const detail::InProcCore* core) {
  MutexLock lock(mu_);
  const auto it = registry_.find(address);
  if (it == registry_.end()) return;
  const auto current = it->second.lock();
  if (current == nullptr || current.get() == core) registry_.erase(it);
}

}  // namespace sds::transport
