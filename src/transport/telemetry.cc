#include "transport/telemetry.h"

namespace sds::transport {

void bind_endpoint_metrics(telemetry::MetricsRegistry& registry,
                           const Endpoint* endpoint,
                           telemetry::Labels labels) {
  auto* bytes_sent = registry.gauge("sds_transport_bytes_sent", labels);
  auto* bytes_received = registry.gauge("sds_transport_bytes_received", labels);
  auto* messages_sent = registry.gauge("sds_transport_messages_sent", labels);
  auto* messages_received =
      registry.gauge("sds_transport_messages_received", labels);
  auto* accepted = registry.gauge("sds_transport_connections_accepted", labels);
  auto* dialed = registry.gauge("sds_transport_connections_dialed", labels);
  auto* rejected = registry.gauge("sds_transport_connections_rejected", labels);
  auto* current = registry.gauge("sds_transport_connections_current", labels);
  registry.add_collector([=](telemetry::MetricsRegistry&) {
    const Counters c = endpoint->counters();
    bytes_sent->set(static_cast<double>(c.bytes_sent));
    bytes_received->set(static_cast<double>(c.bytes_received));
    messages_sent->set(static_cast<double>(c.messages_sent));
    messages_received->set(static_cast<double>(c.messages_received));
    accepted->set(static_cast<double>(c.connections_accepted));
    dialed->set(static_cast<double>(c.connections_dialed));
    rejected->set(static_cast<double>(c.connections_rejected));
    current->set(static_cast<double>(c.current_connections));
  });
}

}  // namespace sds::transport
