// Transport abstraction connecting controllers and stages.
//
// An Endpoint is one participant's attachment to the network: it is bound
// to a string address, accepts inbound connections, dials outbound ones,
// and exchanges wire::Frame messages over established connections.
//
// Threading contract: the transport invokes `FrameHandler` and
// `ConnEventHandler` from a single delivery thread per endpoint, so
// handler code needs no internal locking against itself. `send()` is
// thread-safe and non-blocking (frames are queued for transmission).
//
// Connection caps: every endpoint enforces `max_connections` across
// inbound + outbound connections. This models the physical limit the
// paper identifies (a Frontera node sustains ~2,500 concurrent
// connections) and makes the flat design's ceiling reproducible: dials
// beyond the cap fail with kResourceExhausted.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "wire/frame.h"
#include "wire/shared_frame.h"

namespace sds::transport {

/// Monotonic counters for Tables II–IV style accounting.
struct Counters {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_dialed = 0;
  std::uint64_t connections_rejected = 0;  // over the cap
  std::uint64_t current_connections = 0;
};

enum class ConnEvent { kOpened, kClosed };

using FrameHandler = std::function<void(ConnId, wire::Frame)>;
using ConnEventHandler = std::function<void(ConnId, ConnEvent)>;

struct EndpointOptions {
  /// Combined inbound+outbound connection cap; 0 means unlimited.
  std::size_t max_connections = 0;
  /// Per-connection outbound queue bound (frames); 0 means unbounded.
  std::size_t send_queue_limit = 0;
};

class Endpoint {
 public:
  virtual ~Endpoint() = default;

  [[nodiscard]] virtual const std::string& address() const = 0;

  /// Install handlers. Must be called before the first connect/accept.
  virtual void set_frame_handler(FrameHandler handler) = 0;
  virtual void set_conn_handler(ConnEventHandler handler) = 0;

  /// Dial a peer; returns the local ConnId for the new connection.
  virtual Result<ConnId> connect(const std::string& peer_address) = 0;

  /// Queue a frame on an open connection.
  virtual Status send(ConnId conn, wire::Frame frame) = 0;

  /// Queue a pre-encoded shared frame without copying the payload —
  /// broadcast paths encode once and call this per connection. The
  /// default materializes a Frame (one copy) so every Endpoint keeps
  /// working; inproc/tcp override it with true zero-copy queues.
  virtual Status send_shared(ConnId conn, const wire::SharedFrame& frame) {
    return send(conn, frame.to_frame());
  }

  virtual void close(ConnId conn) = 0;

  /// Stop delivery, close all connections, join internal threads.
  virtual void shutdown() = 0;

  [[nodiscard]] virtual Counters counters() const = 0;
};

/// Factory for one flavour of network (in-process or TCP).
class Network {
 public:
  virtual ~Network() = default;

  /// Create an endpoint bound to `address` (must be unique per network).
  virtual Result<std::unique_ptr<Endpoint>> bind(
      const std::string& address, const EndpointOptions& options) = 0;
};

/// Thread-safe counter block shared by transport implementations.
class CounterBlock {
 public:
  void on_send(std::size_t bytes) {
    bytes_sent_.fetch_add(bytes, std::memory_order_relaxed);
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_receive(std::size_t bytes) {
    bytes_received_.fetch_add(bytes, std::memory_order_relaxed);
    messages_received_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_accept() {
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    current_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_dial() {
    connections_dialed_.fetch_add(1, std::memory_order_relaxed);
    current_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_reject() { connections_rejected_.fetch_add(1, std::memory_order_relaxed); }
  void on_close() { current_connections_.fetch_sub(1, std::memory_order_relaxed); }

  [[nodiscard]] Counters snapshot() const {
    Counters c;
    c.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
    c.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    c.messages_sent = messages_sent_.load(std::memory_order_relaxed);
    c.messages_received = messages_received_.load(std::memory_order_relaxed);
    c.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
    c.connections_dialed = connections_dialed_.load(std::memory_order_relaxed);
    c.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
    c.current_connections = current_connections_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_received_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_dialed_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> current_connections_{0};
};

}  // namespace sds::transport
