#include "transport/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/log.h"
#include "common/mutex.h"
#include "common/queue.h"
#include "common/thread_annotations.h"

namespace sds::transport {

namespace {

constexpr int kMaxEpollEvents = 256;
constexpr std::size_t kReadChunk = 64 * 1024;
/// Frames coalesced per writev call (well under Linux's IOV_MAX).
constexpr std::size_t kMaxIov = 64;

Status errno_status(const std::string& what) {
  return Status::unavailable(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<sockaddr_in> parse_address(const std::string& address) {
  const auto colon = address.rfind(':');
  if (colon == std::string::npos) {
    return Status::invalid_argument("address must be host:port: " + address);
  }
  std::string host = address.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  const std::string port_str = address.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port < 0 || port > 65535) {
    return Status::invalid_argument("bad port: " + port_str);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::invalid_argument("bad IPv4 host: " + host);
  }
  return addr;
}

/// One queued outbound buffer: either bytes this connection owns (unicast
/// serialize) or a view into a ref-counted broadcast image shared with
/// every other destination of the same message.
struct WriteBuf {
  wire::Bytes owned;
  wire::SharedFrame shared;

  [[nodiscard]] std::span<const std::uint8_t> view() const {
    return shared.empty() ? std::span<const std::uint8_t>(owned)
                          : shared.wire_image();
  }
};

/// Per-connection state owned by the event loop.
struct Conn {
  int fd = -1;
  ConnId id;
  wire::Bytes read_buffer;
  std::deque<WriteBuf> write_queue;
  std::size_t write_offset = 0;  // into write_queue.front()
  bool want_write = false;
};

class TcpEndpoint final : public Endpoint {
 public:
  TcpEndpoint(const EndpointOptions& options) : options_(options) {}

  ~TcpEndpoint() override { shutdown(); }

  Status start(const std::string& requested_address) {
    auto addr = parse_address(requested_address);
    if (!addr.is_ok()) return addr.status();

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return errno_status("socket");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&*addr), sizeof(*addr)) < 0) {
      return errno_status("bind " + requested_address);
    }
    if (::listen(listen_fd_, 1024) < 0) return errno_status("listen");
    set_nonblocking(listen_fd_);

    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    char host[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
    address_ = std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return errno_status("epoll_create1");
    wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd_ < 0) return errno_status("eventfd");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
    ev.data.fd = wake_fd_;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

    loop_thread_ = std::thread([this] { event_loop(); });
    return Status::ok();
  }

  const std::string& address() const override { return address_; }

  void set_frame_handler(FrameHandler handler) override {
    MutexLock lock(mu_);
    frame_handler_ = std::move(handler);
  }

  void set_conn_handler(ConnEventHandler handler) override {
    MutexLock lock(mu_);
    conn_handler_ = std::move(handler);
  }

  Result<ConnId> connect(const std::string& peer_address) override {
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::unavailable("endpoint shut down");
    }
    if (!try_reserve_slot()) {
      counters_.on_reject();
      return Status::resource_exhausted("local connection cap reached");
    }
    auto addr = parse_address(peer_address);
    if (!addr.is_ok()) {
      release_slot();
      return addr.status();
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      release_slot();
      return errno_status("socket");
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&*addr), sizeof(*addr)) < 0) {
      ::close(fd);
      release_slot();
      return errno_status("connect " + peer_address);
    }
    set_nonblocking(fd);
    set_nodelay(fd);

    const ConnId id{next_conn_.fetch_add(1, std::memory_order_relaxed)};
    counters_.on_dial();
    post_command([this, fd, id] { register_conn(fd, id, /*inbound=*/false); });
    return id;
  }

  Status send(ConnId conn, wire::Frame frame) override {
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::unavailable("endpoint shut down");
    }
    const std::size_t size = frame.wire_size();
    auto bytes = frame.serialize();
    counters_.on_send(size);
    post_command([this, conn, bytes = std::move(bytes)]() mutable {
      WriteBuf buf;
      buf.owned = std::move(bytes);
      queue_write(conn, std::move(buf));
    });
    return Status::ok();
  }

  Status send_shared(ConnId conn, const wire::SharedFrame& frame) override {
    if (stopping_.load(std::memory_order_acquire)) {
      return Status::unavailable("endpoint shut down");
    }
    counters_.on_send(frame.wire_size());
    post_command([this, conn, frame]() {  // ref-count bump, no payload copy
      WriteBuf buf;
      buf.shared = frame;
      queue_write(conn, std::move(buf));
    });
    return Status::ok();
  }

  void close(ConnId conn) override {
    post_command([this, conn] {
      const auto it = by_id_.find(conn);
      if (it != by_id_.end()) close_conn(*it->second, /*notify=*/true);
    });
  }

  void shutdown() override {
    if (stopping_.exchange(true, std::memory_order_acq_rel)) {
      if (loop_thread_.joinable()) loop_thread_.join();
      return;
    }
    wake();
    if (loop_thread_.joinable()) loop_thread_.join();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    listen_fd_ = wake_fd_ = epoll_fd_ = -1;
  }

  Counters counters() const override { return counters_.snapshot(); }

 private:
  bool try_reserve_slot() {
    if (options_.max_connections == 0) {
      slots_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    std::size_t current = slots_.load(std::memory_order_relaxed);
    while (current < options_.max_connections) {
      if (slots_.compare_exchange_weak(current, current + 1,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void release_slot() { slots_.fetch_sub(1, std::memory_order_relaxed); }

  void post_command(std::function<void()> cmd) {
    {
      MutexLock lock(mu_);
      commands_.push_back(std::move(cmd));
    }
    wake();
  }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
  }

  // ------------------------------------------------------------------
  // Event-loop side (no external locking needed for conns_/by_id_).

  void event_loop() {
    std::vector<epoll_event> events(kMaxEpollEvents);
    while (!stopping_.load(std::memory_order_acquire)) {
      const int n = ::epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()), 100);
      if (n < 0 && errno != EINTR) break;
      for (int i = 0; i < n; ++i) {
        const auto& ev = events[i];
        if (ev.data.fd == wake_fd_) {
          drain_wake();
        } else if (ev.data.fd == listen_fd_) {
          accept_pending();
        } else {
          handle_conn_event(ev);
        }
      }
      run_commands();
    }
    // Teardown: close all connections without callbacks (endpoint gone).
    for (auto& [fd, conn] : conns_) ::close(conn.fd);
    conns_.clear();
    by_id_.clear();
  }

  void drain_wake() {
    std::uint64_t buf;
    while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
    }
  }

  void run_commands() {
    std::vector<std::function<void()>> cmds;
    {
      MutexLock lock(mu_);
      cmds.swap(commands_);
    }
    for (auto& cmd : cmds) cmd();
  }

  void accept_pending() {
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) break;
      if (!try_reserve_slot()) {
        counters_.on_reject();
        ::close(fd);
        continue;
      }
      set_nonblocking(fd);
      set_nodelay(fd);
      const ConnId id{next_conn_.fetch_add(1, std::memory_order_relaxed)};
      counters_.on_accept();
      register_conn(fd, id, /*inbound=*/true);
    }
  }

  void register_conn(int fd, ConnId id, bool inbound) {
    (void)inbound;
    auto [it, _] = conns_.try_emplace(fd);
    Conn& conn = it->second;
    conn.fd = fd;
    conn.id = id;
    by_id_[id] = &conn;

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    notify_conn(id, ConnEvent::kOpened);
  }

  void handle_conn_event(const epoll_event& ev) {
    const auto it = conns_.find(ev.data.fd);
    if (it == conns_.end()) return;
    Conn& conn = it->second;
    if (ev.events & (EPOLLHUP | EPOLLERR)) {
      close_conn(conn, /*notify=*/true);
      return;
    }
    if (ev.events & EPOLLIN) {
      if (!read_available(conn)) return;  // conn closed during read
    }
    if (ev.events & EPOLLOUT) flush_writes(conn);
  }

  /// Returns false if the connection was closed.
  bool read_available(Conn& conn) {
    while (true) {
      const std::size_t old_size = conn.read_buffer.size();
      conn.read_buffer.resize(old_size + kReadChunk);
      const ssize_t n =
          ::read(conn.fd, conn.read_buffer.data() + old_size, kReadChunk);
      if (n > 0) {
        conn.read_buffer.resize(old_size + static_cast<std::size_t>(n));
        if (!parse_frames(conn)) return false;
        continue;
      }
      conn.read_buffer.resize(old_size);
      if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK)) {
        close_conn(conn, /*notify=*/true);
        return false;
      }
      return true;  // drained
    }
  }

  /// Returns false if the connection was closed due to a protocol error.
  bool parse_frames(Conn& conn) {
    std::size_t offset = 0;
    auto& buf = conn.read_buffer;
    while (buf.size() - offset >= wire::kFrameHeaderSize) {
      auto header = wire::FrameHeader::decode(
          std::span<const std::uint8_t>(buf.data() + offset, buf.size() - offset));
      if (!header.is_ok()) {
        SDS_LOG(WARN) << address_ << ": protocol error: "
                      << header.status().to_string();
        close_conn(conn, /*notify=*/true);
        return false;
      }
      const std::size_t total = wire::kFrameHeaderSize + header->length;
      if (buf.size() - offset < total) break;
      std::size_t body_end = offset + total;
      const bool traced = (header->flags & wire::kFlagTraceContext) != 0;
      if (traced && header->length < wire::kTraceContextSize) {
        SDS_LOG(WARN) << address_
                      << ": protocol error: trace flag on short frame";
        close_conn(conn, /*notify=*/true);
        return false;
      }
      wire::Frame frame;
      frame.type = header->type;
      if (traced) {
        // The 16-byte trace trailer sits after the message payload; strip
        // it so the message decoders see exactly the payload bytes.
        frame.trace = wire::TraceContext::decode_trailer(
            std::span<const std::uint8_t>(
                buf.data() + body_end - wire::kTraceContextSize,
                wire::kTraceContextSize));
        body_end -= wire::kTraceContextSize;
      }
      frame.payload.assign(buf.begin() + static_cast<std::ptrdiff_t>(offset + wire::kFrameHeaderSize),
                           buf.begin() + static_cast<std::ptrdiff_t>(body_end));
      counters_.on_receive(total);
      deliver_frame(conn.id, std::move(frame));
      offset += total;
    }
    if (offset > 0) buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(offset));
    return true;
  }

  void deliver_frame(ConnId id, wire::Frame frame) {
    FrameHandler handler;
    {
      MutexLock lock(mu_);
      handler = frame_handler_;
    }
    if (handler) handler(id, std::move(frame));
  }

  void notify_conn(ConnId id, ConnEvent event) {
    ConnEventHandler handler;
    {
      MutexLock lock(mu_);
      handler = conn_handler_;
    }
    if (handler) handler(id, event);
  }

  void queue_write(ConnId id, WriteBuf buf) {
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return;  // closed before the send ran
    Conn& conn = *it->second;
    if (options_.send_queue_limit != 0 &&
        conn.write_queue.size() >= options_.send_queue_limit) {
      SDS_LOG(WARN) << address_ << ": send queue overflow, closing conn";
      close_conn(conn, /*notify=*/true);
      return;
    }
    conn.write_queue.push_back(std::move(buf));
    flush_writes(conn);
  }

  /// Vectored flush: gathers queued frames (header+payload are already
  /// contiguous per buffer) into one writev, so a burst of broadcast
  /// frames leaves in a single syscall instead of one write per frame.
  void flush_writes(Conn& conn) {
    while (!conn.write_queue.empty()) {
      std::array<iovec, kMaxIov> iov;
      std::size_t iov_count = 0;
      std::size_t front_skip = conn.write_offset;
      for (const auto& buf : conn.write_queue) {
        if (iov_count == kMaxIov) break;
        const auto view = buf.view();
        iov[iov_count].iov_base =
            const_cast<std::uint8_t*>(view.data() + front_skip);
        iov[iov_count].iov_len = view.size() - front_skip;
        ++iov_count;
        front_skip = 0;
      }
      ssize_t n =
          ::writev(conn.fd, iov.data(), static_cast<int>(iov_count));
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(conn, /*notify=*/true);
        return;
      }
      std::size_t written = static_cast<std::size_t>(n);
      while (written > 0) {
        const std::size_t front_remaining =
            conn.write_queue.front().view().size() - conn.write_offset;
        if (written >= front_remaining) {
          written -= front_remaining;
          conn.write_queue.pop_front();
          conn.write_offset = 0;
        } else {
          conn.write_offset += written;
          written = 0;
        }
      }
    }
    const bool want_write = !conn.write_queue.empty();
    if (want_write != conn.want_write) {
      conn.want_write = want_write;
      epoll_event ev{};
      ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
      ev.data.fd = conn.fd;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
    }
  }

  void close_conn(Conn& conn, bool notify) {
    const ConnId id = conn.id;
    const int fd = conn.fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    by_id_.erase(id);
    conns_.erase(fd);  // `conn` is dangling after this line
    release_slot();
    counters_.on_close();
    if (notify) notify_conn(id, ConnEvent::kClosed);
  }

  const EndpointOptions options_;
  std::string address_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread loop_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_conn_{1};
  std::atomic<std::size_t> slots_{0};

  Mutex mu_{LockRank::kTransportEndpoint};
  FrameHandler frame_handler_ SDS_GUARDED_BY(mu_);
  ConnEventHandler conn_handler_ SDS_GUARDED_BY(mu_);
  std::vector<std::function<void()>> commands_ SDS_GUARDED_BY(mu_);

  // Event-loop-thread-only state.
  std::unordered_map<int, Conn> conns_;       // sdscheck: allow(unguarded-field)
  std::unordered_map<ConnId, Conn*> by_id_;   // sdscheck: allow(unguarded-field)

  CounterBlock counters_;
};

}  // namespace

Result<std::unique_ptr<Endpoint>> TcpNetwork::bind(
    const std::string& address, const EndpointOptions& options) {
  auto endpoint = std::make_unique<TcpEndpoint>(options);
  SDS_RETURN_IF_ERROR(endpoint->start(address));
  return std::unique_ptr<Endpoint>(std::move(endpoint));
}

}  // namespace sds::transport
