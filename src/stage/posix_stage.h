// PosixStage — a real enforcement engine in the PADLL mould.
//
// Applications (or, here, synthetic workload drivers) submit classified
// POSIX-level operations; the stage admits or delays them through its
// RateLimiter and accounts per-dimension rates that the collect phase
// reports to the control plane.
//
// Thread-safe: multiple application threads may submit concurrently while
// the control-plane thread collects and enforces.
#pragma once

#include <array>
#include <cstdint>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "proto/messages.h"
#include "stage/limiter.h"
#include "stage/op.h"

namespace sds::stage {

class PosixStage {
 public:
  PosixStage(proto::StageInfo info, const Clock& clock,
             LimiterOptions options = {})
      : info_(std::move(info)),
        clock_(&clock),
        limiter_(clock.now(), options),
        window_start_(clock.now()) {}

  [[nodiscard]] const proto::StageInfo& info() const { return info_; }

  /// Try to admit one operation right now; returns true if admitted.
  /// Rejected operations are counted as throttled (callers typically
  /// retry after admission_delay()).
  bool try_submit(OpClass op) SDS_EXCLUDES(mu_) {
    const Nanos now = clock_->now();
    MutexLock lock(mu_);
    if (limiter_.try_admit(op, now)) {
      ++admitted_[static_cast<std::size_t>(dimension_of(op))];
      return true;
    }
    ++throttled_[static_cast<std::size_t>(dimension_of(op))];
    return false;
  }

  /// Delay until `op` could be admitted (0 = admissible now).
  [[nodiscard]] Nanos admission_delay(OpClass op) SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return limiter_.admission_delay(op, clock_->now());
  }

  /// Apply a rule from the control plane; stale epochs rejected.
  bool apply(const proto::Rule& rule) SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return limiter_.apply(rule, clock_->now());
  }

  /// Report rates observed since the previous collect and reset the
  /// accounting window (exactly what a Cheferd stage does each cycle).
  [[nodiscard]] proto::StageMetrics collect(std::uint64_t cycle_id)
      SDS_EXCLUDES(mu_) {
    const Nanos now = clock_->now();
    MutexLock lock(mu_);
    const double window = std::max(to_seconds(now - window_start_), 1e-9);
    proto::StageMetrics m;
    m.cycle_id = cycle_id;
    m.stage_id = info_.stage_id;
    m.job_id = info_.job_id;
    m.data_iops = static_cast<double>(admitted_[0]) / window;
    m.meta_iops = static_cast<double>(admitted_[1]) / window;
    m.data_limit = limiter_.limit(Dimension::kData);
    m.meta_limit = limiter_.limit(Dimension::kMeta);
    admitted_ = {};
    throttled_ = {};
    window_start_ = now;
    return m;
  }

  /// Operations rejected since the last collect (introspection).
  [[nodiscard]] std::uint64_t throttled(Dimension d) const
      SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return throttled_[static_cast<std::size_t>(d)];
  }

  [[nodiscard]] double limit(Dimension d) const SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return limiter_.limit(d);
  }

 private:
  proto::StageInfo info_;
  const Clock* clock_;

  mutable Mutex mu_{LockRank::kStage};
  RateLimiter limiter_ SDS_GUARDED_BY(mu_);
  std::array<std::uint64_t, kNumDimensions> admitted_ SDS_GUARDED_BY(mu_){};
  std::array<std::uint64_t, kNumDimensions> throttled_ SDS_GUARDED_BY(mu_){};
  Nanos window_start_ SDS_GUARDED_BY(mu_);
};

}  // namespace sds::stage
