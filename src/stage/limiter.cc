#include "stage/limiter.h"

#include <algorithm>

namespace sds::stage {

RateLimiter::RateLimiter(Nanos now, LimiterOptions options)
    : options_(options),
      buckets_{TokenBucket(proto::kUnlimited, 1.0, now),
               TokenBucket(proto::kUnlimited, 1.0, now)},
      limits_{proto::kUnlimited, proto::kUnlimited} {}

double RateLimiter::burst_for(double rate) const {
  return std::max(options_.min_burst, rate * options_.burst_fraction);
}

bool RateLimiter::apply(const proto::Rule& rule, Nanos now) {
  if (rule.epoch < epoch_) return false;  // stale rule from an old epoch
  epoch_ = rule.epoch;

  limits_[index(Dimension::kData)] = rule.data_iops_limit;
  limits_[index(Dimension::kMeta)] = rule.meta_iops_limit;
  buckets_[index(Dimension::kData)].set_rate(
      rule.data_iops_limit, burst_for(rule.data_iops_limit), now);
  buckets_[index(Dimension::kMeta)].set_rate(
      rule.meta_iops_limit, burst_for(rule.meta_iops_limit), now);
  return true;
}

bool RateLimiter::try_admit(OpClass op, Nanos now) {
  return buckets_[index(dimension_of(op))].try_acquire(1.0, now);
}

Nanos RateLimiter::admission_delay(OpClass op, Nanos now) {
  return buckets_[index(dimension_of(op))].time_until(1.0, now);
}

}  // namespace sds::stage
