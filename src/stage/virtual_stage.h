// VirtualStage — the paper's lightweight data-plane stage stand-in.
//
// A virtual stage mimics the control-plane-facing behaviour of a real
// stage without running an application: it answers collect requests with
// synthetic metrics (driven by a pluggable demand function) and applies
// enforcement rules. The reported rate is min(demand, enforced limit) —
// a rate-limited stage cannot submit more than its limit, so latent
// demand is invisible to the controller, exactly as in a real deployment.
//
// Deterministic: all behaviour is a function of explicit time.
#pragma once

#include <functional>
#include <utility>

#include "common/clock.h"
#include "common/types.h"
#include "proto/messages.h"
#include "stage/op.h"

namespace sds::stage {

/// Demand (ops/s) a job would submit through this stage at time t.
using DemandFn = std::function<double(Nanos)>;

class VirtualStage {
 public:
  VirtualStage(proto::StageInfo info, DemandFn data_demand, DemandFn meta_demand)
      : info_(std::move(info)),
        data_demand_(std::move(data_demand)),
        meta_demand_(std::move(meta_demand)) {}

  [[nodiscard]] const proto::StageInfo& info() const { return info_; }

  /// Respond to a collect request.
  [[nodiscard]] proto::StageMetrics collect(std::uint64_t cycle_id, Nanos now) const {
    proto::StageMetrics m;
    m.cycle_id = cycle_id;
    m.stage_id = info_.stage_id;
    m.job_id = info_.job_id;
    m.data_iops = throttled(data_demand_ ? data_demand_(now) : 0.0, data_limit_);
    m.meta_iops = throttled(meta_demand_ ? meta_demand_(now) : 0.0, meta_limit_);
    m.data_limit = data_limit_;
    m.meta_limit = meta_limit_;
    return m;
  }

  /// Apply an enforcement rule; stale epochs are rejected.
  bool apply(const proto::Rule& rule) {
    if (rule.epoch < epoch_) return false;
    epoch_ = rule.epoch;
    data_limit_ = rule.data_iops_limit;
    meta_limit_ = rule.meta_iops_limit;
    return true;
  }

  [[nodiscard]] double limit(Dimension d) const {
    return d == Dimension::kData ? data_limit_ : meta_limit_;
  }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Unthrottled demand at `now` (test/bench introspection).
  [[nodiscard]] double demand(Dimension d, Nanos now) const {
    const auto& fn = d == Dimension::kData ? data_demand_ : meta_demand_;
    return fn ? fn(now) : 0.0;
  }

 private:
  static double throttled(double demand, double limit) {
    if (demand < 0) demand = 0;
    if (limit < 0) return demand;  // unlimited
    return demand < limit ? demand : limit;
  }

  proto::StageInfo info_;
  DemandFn data_demand_;
  DemandFn meta_demand_;
  double data_limit_ = proto::kUnlimited;
  double meta_limit_ = proto::kUnlimited;
  std::uint64_t epoch_ = 0;
};

}  // namespace sds::stage
