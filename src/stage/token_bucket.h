// Token-bucket rate limiter: the enforcement mechanism of a data-plane
// stage. Deterministic — all methods take the current time explicitly, so
// the same code runs under the live clock, unit tests, and the simulator.
#pragma once

#include <algorithm>

#include "common/clock.h"

namespace sds::stage {

class TokenBucket {
 public:
  /// A negative rate means unlimited (mirrors proto::kUnlimited).
  /// A new bucket starts full: a stage may burst up to `burst` operations
  /// immediately after (re)configuration.
  TokenBucket(double rate_per_sec, double burst, Nanos now)
      : last_refill_(now) {
    set_rate(rate_per_sec, burst, now);
    tokens_ = burst_;
  }

  /// Reconfigure the bucket; retained tokens are clamped to the new burst.
  void set_rate(double rate_per_sec, double burst, Nanos now) {
    refill(now);
    rate_ = rate_per_sec;
    burst_ = std::max(burst, 1.0);
    tokens_ = std::min(tokens_, burst_);
  }

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double burst() const { return burst_; }
  [[nodiscard]] bool unlimited() const { return rate_ < 0; }

  /// Admit `n` operations now if enough tokens are available.
  bool try_acquire(double n, Nanos now) {
    if (unlimited()) return true;
    refill(now);
    if (tokens_ + kSlack >= n) {
      tokens_ -= n;
      return true;
    }
    return false;
  }

  /// Time until `n` operations could be admitted (0 if admissible now).
  [[nodiscard]] Nanos time_until(double n, Nanos now) {
    if (unlimited()) return Nanos{0};
    refill(now);
    if (tokens_ + kSlack >= n) return Nanos{0};
    if (rate_ <= 0) return Nanos::max();  // rate 0: never
    const double missing = n - tokens_;
    return Nanos{static_cast<std::int64_t>(missing / rate_ * 1e9) + 1};
  }

  [[nodiscard]] double tokens(Nanos now) {
    refill(now);
    return tokens_;
  }

 private:
  static constexpr double kSlack = 1e-9;

  void refill(Nanos now) {
    if (now <= last_refill_) return;
    if (rate_ > 0) {
      const double elapsed = to_seconds(now - last_refill_);
      tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    }
    last_refill_ = now;
  }

  double rate_ = -1;
  double burst_ = 1;
  double tokens_ = 0;
  Nanos last_refill_;
};

}  // namespace sds::stage
