// Operation classes intercepted by a data-plane stage.
//
// The paper's control plane manages two metric dimensions: data IOPS and
// metadata IOPS (Cheferd/PADLL terminology). Each concrete POSIX-level
// operation class maps onto one dimension.
#pragma once

#include <cstdint>
#include <string_view>

namespace sds::stage {

enum class Dimension : std::uint8_t { kData = 0, kMeta = 1 };
constexpr std::size_t kNumDimensions = 2;

[[nodiscard]] constexpr std::string_view to_string(Dimension d) {
  return d == Dimension::kData ? "data" : "meta";
}

enum class OpClass : std::uint8_t {
  kRead = 0,
  kWrite,
  kOpen,
  kClose,
  kStat,
  kCreate,
  kUnlink,
  kRename,
  kReaddir,
};

[[nodiscard]] constexpr Dimension dimension_of(OpClass op) {
  switch (op) {
    case OpClass::kRead:
    case OpClass::kWrite:
      return Dimension::kData;
    case OpClass::kOpen:
    case OpClass::kClose:
    case OpClass::kStat:
    case OpClass::kCreate:
    case OpClass::kUnlink:
    case OpClass::kRename:
    case OpClass::kReaddir:
      return Dimension::kMeta;
  }
  return Dimension::kData;
}

[[nodiscard]] constexpr std::string_view to_string(OpClass op) {
  switch (op) {
    case OpClass::kRead: return "read";
    case OpClass::kWrite: return "write";
    case OpClass::kOpen: return "open";
    case OpClass::kClose: return "close";
    case OpClass::kStat: return "stat";
    case OpClass::kCreate: return "create";
    case OpClass::kUnlink: return "unlink";
    case OpClass::kRename: return "rename";
    case OpClass::kReaddir: return "readdir";
  }
  return "?";
}

}  // namespace sds::stage
