// Per-dimension admission control for one stage: a token bucket per
// metric dimension (data / metadata IOPS), reconfigured by enforcement
// rules pushed from the control plane.
//
// Rules carry epochs (monotonically increasing per controller epoch ×
// cycle). A rule older than the newest applied one is *stale* — e.g. a
// delayed batch from a failed-over controller — and is rejected, which is
// the dependability behaviour the paper's §VI calls for.
#pragma once

#include <array>
#include <cstdint>

#include "common/clock.h"
#include "proto/messages.h"
#include "stage/op.h"
#include "stage/token_bucket.h"

namespace sds::stage {

struct LimiterOptions {
  /// Bucket burst as a fraction of the per-second rate (how much a stage
  /// can catch up after an idle gap).
  double burst_fraction = 0.1;
  /// Minimum burst in operations.
  double min_burst = 8.0;
};

class RateLimiter {
 public:
  explicit RateLimiter(Nanos now, LimiterOptions options = {});

  /// Apply a rule. Returns false (and changes nothing) if the rule's
  /// epoch is older than the last applied epoch.
  bool apply(const proto::Rule& rule, Nanos now);

  /// Admit one operation of class `op` now?
  bool try_admit(OpClass op, Nanos now);

  /// Delay until an operation of class `op` could be admitted.
  [[nodiscard]] Nanos admission_delay(OpClass op, Nanos now);

  [[nodiscard]] double limit(Dimension d) const { return limits_[index(d)]; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  static constexpr std::size_t index(Dimension d) {
    return static_cast<std::size_t>(d);
  }

  [[nodiscard]] double burst_for(double rate) const;

  LimiterOptions options_;
  std::array<TokenBucket, kNumDimensions> buckets_;
  std::array<double, kNumDimensions> limits_;
  std::uint64_t epoch_ = 0;
};

}  // namespace sds::stage
