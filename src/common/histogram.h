// Log-bucketed latency histogram (HdrHistogram-style) and streaming summary
// statistics. Used by the cycle engine to record per-phase latencies and by
// benches to report percentiles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace sds {

/// Histogram over non-negative int64 values (typically nanoseconds).
///
/// Values are bucketed with bounded relative error (~1/32 by default):
/// each power-of-two range is split into `kSubBuckets` linear buckets.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  Histogram();

  void record(std::int64_t value);
  void record(Nanos value) { record(value.count()); }

  /// Merge another histogram into this one.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t min() const;
  [[nodiscard]] std::int64_t max() const { return max_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;

  /// Value at quantile q in [0,1]. Returns 0 for an empty histogram.
  [[nodiscard]] std::int64_t percentile(double q) const;

  void reset();

  /// "count=.. mean=..ms p50=..ms p99=..ms max=..ms" (values as millis).
  [[nodiscard]] std::string summary_ms() const;

 private:
  static std::size_t bucket_index(std::int64_t value);
  static std::int64_t bucket_upper_bound(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0;
  double sum_sq_ = 0;
};

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  /// Coefficient of variation (stddev/mean); the paper reports stdev < 6%.
  [[nodiscard]] double cv() const { return mean() != 0.0 ? stddev() / mean() : 0.0; }

  void merge(const RunningStats& o);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0;
};

}  // namespace sds
