// Annotated synchronization primitives for Clang Thread Safety Analysis.
//
// std::mutex and std::lock_guard carry no capability attributes in
// libstdc++, so -Wthread-safety cannot see through them. Mutex, MutexLock
// and CondVar are zero-overhead wrappers that (a) behave exactly like the
// std types they wrap and (b) are annotated, so members declared
// SDS_GUARDED_BY(mu_) are compiler-checked at every access.
//
// Usage:
//   mutable Mutex mu_;
//   int value_ SDS_GUARDED_BY(mu_);
//   ...
//   MutexLock lock(mu_);   // replaces std::lock_guard / std::unique_lock
//   value_ = 42;           // OK: analysis sees the capability
//
// Condition waits keep the predicate idiom:
//   cv_.wait(lock, [&] SDS_REQUIRES(mu_) { return ready_; });
// The predicate runs with the lock held (std::condition_variable
// contract); the SDS_REQUIRES annotation tells the analysis so.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace sds {

/// Annotated std::mutex. Same semantics; same size as one std::mutex in
/// Release builds (the LockRank member only exists while the lock-order
/// validator is compiled in — see common/lock_rank.h).
///
/// Stamp every mutex with its position in the repo-wide acquisition
/// hierarchy at the declaration:
///   mutable Mutex mu_{LockRank::kTelemetryRegistry};
/// `tools/sdscheck --pass=lockgraph` rejects unranked mutexes in src/.
class SDS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank) {
#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS
    rank_ = rank;
#else
    (void)rank;
#endif
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SDS_ACQUIRE() {
    lock_order::note_acquire(this, rank());
    mu_.lock();
  }
  void unlock() SDS_RELEASE() {
    mu_.unlock();
    lock_order::note_release(this);
  }
  [[nodiscard]] bool try_lock() SDS_TRY_ACQUIRE(true) {
    // No order check: try_lock cannot deadlock. Held-stack bookkeeping
    // only, so later acquires still see this lock as held.
    if (!mu_.try_lock()) return false;
#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS
    lock_order::note_acquire(this, LockRank::kUnranked);
#endif
    return true;
  }

  /// The wrapped mutex, for interop with std APIs (CondVar uses it).
  [[nodiscard]] std::mutex& native() { return mu_; }

  [[nodiscard]] LockRank rank() const {
#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS
    return rank_;
#else
    return LockRank::kUnranked;
#endif
  }

 private:
  std::mutex mu_;
#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS
  LockRank rank_ = LockRank::kUnranked;
#endif
};

/// RAII guard over Mutex; the annotated replacement for both
/// std::lock_guard and std::unique_lock (CondVar can wait on it).
class SDS_SCOPED_CAPABILITY MutexLock {
 public:
  // The order check runs BEFORE blocking on the mutex, so an execution
  // that would deadlock reports a rank violation instead of hanging.
  explicit MutexLock(Mutex& mu) SDS_ACQUIRE(mu)
      : lock_(mu.native(), std::defer_lock) {
    lock_order::note_acquire(&mu, mu.rank());
    lock_.lock();
#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS
    mu_ = &mu;
#endif
  }
  ~MutexLock() SDS_RELEASE() {
#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS
    if (lock_.owns_lock()) lock_.unlock();
    lock_order::note_release(mu_);
#endif
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// The wrapped lock, for std::condition_variable interop.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS
  Mutex* mu_ = nullptr;
#endif
};

/// Condition variable that waits on MutexLock. All waits take a
/// predicate, making lost wakeups and spurious-wake bugs impossible by
/// construction — the project's CV discipline (see DESIGN.md §10).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until `pred()` is true. The lock is held whenever `pred`
  /// runs and when the call returns.
  template <typename Pred>
  void wait(MutexLock& lock, Pred pred) {
    cv_.wait(lock.native(), std::move(pred));
  }

  /// Blocks until `pred()` is true or `timeout` elapsed; returns the
  /// final `pred()` value.
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(MutexLock& lock,
                const std::chrono::duration<Rep, Period>& timeout, Pred pred) {
    return cv_.wait_for(lock.native(), timeout, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace sds
