// Thread-safe leveled logger.
//
// Usage:  SDS_LOG(INFO) << "cycle " << n << " took " << ms << " ms";
// Severity below the global threshold is compiled to a cheap branch.
//
// Each record carries a wall-clock timestamp (local date-time with
// microseconds) and a small per-thread id:
//   [2026-08-06 14:03:07.123456 T2] WARN  gather.cc:88] gather timed out
// The startup threshold honours the SDS_LOG_LEVEL environment variable
// (TRACE / DEBUG / INFO / WARN / ERROR / OFF, case-insensitive); the
// default is WARN.
#pragma once

#include <atomic>
#include <sstream>
#include <string_view>

namespace sds {

enum class LogLevel : int { kTRACE = 0, kDEBUG, kINFO, kWARN, kERROR, kOFF };

[[nodiscard]] constexpr std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTRACE: return "TRACE";
    case LogLevel::kDEBUG: return "DEBUG";
    case LogLevel::kINFO: return "INFO";
    case LogLevel::kWARN: return "WARN";
    case LogLevel::kERROR: return "ERROR";
    case LogLevel::kOFF: return "OFF";
  }
  return "?";
}

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return level_.load(std::memory_order_relaxed); }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= this->level(); }

  /// Write one formatted record to stderr (single syscall-ish, locked).
  void write(LogLevel level, std::string_view file, int line, std::string_view msg);

 private:
  /// Reads SDS_LOG_LEVEL to seed the threshold (default WARN).
  Logger();

  std::atomic<LogLevel> level_{LogLevel::kWARN};
};

namespace detail {
class LogRecord {
 public:
  LogRecord(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogRecord() { Logger::instance().write(level_, file_, line_, stream_.str()); }

  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace sds

#define SDS_LOG_ENABLED(severity) \
  (::sds::Logger::instance().enabled(::sds::LogLevel::k##severity))

#define SDS_LOG(severity)                 \
  if (!SDS_LOG_ENABLED(severity)) {       \
  } else                                  \
    ::sds::detail::LogRecord(::sds::LogLevel::k##severity, __FILE__, __LINE__)
