// Deterministic, fast pseudo-random number generation (SplitMix64 seeding +
// xoshiro256**). Experiments must be bit-reproducible across platforms, so
// no std::uniform_*_distribution (their algorithms are unspecified).
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>

namespace sds {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — public-domain generator by Blackman & Vigna.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5DF5C0DE5D5CA1EULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    __extension__ using u128 = unsigned __int128;
    u128 m = static_cast<u128>(next_u64()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<u128>(next_u64()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : next_below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// true with probability p.
  bool bernoulli(double p) { return uniform01() < p; }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    assert(rate > 0);
    double u;
    do { u = uniform01(); } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Poisson-distributed count (Knuth for small lambda, normal approx above).
  std::uint64_t poisson(double lambda) {
    assert(lambda >= 0);
    if (lambda > 64.0) {
      const double x = normal(lambda, std::sqrt(lambda));
      return x <= 0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    const double limit = std::exp(-lambda);
    double product = uniform01();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform01();
    }
    return count;
  }

  /// Split off an independent stream (for per-entity generators).
  Rng split() { return Rng(next_u64() ^ 0x9E3779B97F4A7C15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace sds
