#include "common/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/mutex.h"

namespace sds {

namespace {

/// Map an SDS_LOG_LEVEL env value (case-insensitive level name) onto the
/// threshold; unknown values leave the default untouched.
LogLevel initial_level() {
  const char* env = std::getenv("SDS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWARN;
  const auto matches = [env](const char* name) {
    for (std::size_t i = 0;; ++i) {
      const char a = static_cast<char>(std::toupper(
          static_cast<unsigned char>(env[i])));
      if (a != name[i]) return false;
      if (a == '\0') return true;
    }
  };
  if (matches("TRACE")) return LogLevel::kTRACE;
  if (matches("DEBUG")) return LogLevel::kDEBUG;
  if (matches("INFO")) return LogLevel::kINFO;
  if (matches("WARN") || matches("WARNING")) return LogLevel::kWARN;
  if (matches("ERROR")) return LogLevel::kERROR;
  if (matches("OFF") || matches("NONE")) return LogLevel::kOFF;
  return LogLevel::kWARN;
}

/// Small monotonically assigned id (1, 2, ...) — more readable in records
/// than the platform's opaque thread id hash.
std::uint64_t this_thread_id() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Logger::Logger() { set_level(initial_level()); }

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view file, int line,
                   std::string_view msg) {
  // Strip directories from the file path for compact records.
  if (auto pos = file.rfind('/'); pos != std::string_view::npos) {
    file = file.substr(pos + 1);
  }
  const auto now = std::chrono::system_clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      now.time_since_epoch())
                      .count();
  const std::time_t secs = static_cast<std::time_t>(us / 1'000'000);
  std::tm tm_buf{};
#if defined(_WIN32)
  localtime_s(&tm_buf, &secs);
#else
  localtime_r(&secs, &tm_buf);
#endif
  char when[32];
  std::strftime(when, sizeof(when), "%Y-%m-%d %H:%M:%S", &tm_buf);

  // One writer at a time so concurrent records never interleave.
  static Mutex mu{LockRank::kLog};
  MutexLock lock(mu);
  std::fprintf(stderr, "[%s.%06lld T%llu] %-5s %.*s:%d] %.*s\n", when,
               static_cast<long long>(us % 1'000'000),
               static_cast<unsigned long long>(this_thread_id()),
               std::string(to_string(level)).c_str(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace sds
