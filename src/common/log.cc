#include "common/log.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace sds {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view file, int line,
                   std::string_view msg) {
  // Strip directories from the file path for compact records.
  if (auto pos = file.rfind('/'); pos != std::string_view::npos) {
    file = file.substr(pos + 1);
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(now).count();

  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%lld.%06lld] %-5s %.*s:%d] %.*s\n",
               static_cast<long long>(us / 1'000'000),
               static_cast<long long>(us % 1'000'000),
               std::string(to_string(level)).c_str(),
               static_cast<int>(file.size()), file.data(), line,
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace sds
