// Closable bounded/unbounded MPMC queues used by transports and runtimes.
//
// A closed queue rejects pushes and drains remaining items; pop() on an
// empty closed queue returns nullopt immediately. This gives clean
// shutdown semantics without sentinel items.
//
// Lock discipline is compiler-checked: all mutable state is
// SDS_GUARDED_BY(mu_) and every condition wait uses a predicate, so a
// close() racing a blocked pop()/push() always resolves (the predicates
// observe `closed_` under the lock — see QueueShutdownTest).
#pragma once

#include <deque>
#include <optional>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sds {

template <typename T>
class Queue {
 public:
  /// capacity == 0 means unbounded.
  explicit Queue(std::size_t capacity = 0) : capacity_(capacity) {}

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  /// Blocking push. Returns false if the queue is (or becomes) closed.
  bool push(T item) SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    not_full_.wait(lock, [&]() SDS_REQUIRES(mu_) {
      return closed_ || !is_full();
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T item) SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (closed_ || is_full()) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop. Returns nullopt once closed and drained.
  std::optional<T> pop() SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    not_empty_.wait(lock, [&]() SDS_REQUIRES(mu_) {
      return closed_ || !items_.empty();
    });
    return pop_locked();
  }

  /// Pop with relative timeout. Returns nullopt on timeout or closed+empty.
  std::optional<T> pop_for(Nanos timeout) SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    not_empty_.wait_for(lock, timeout, [&]() SDS_REQUIRES(mu_) {
      return closed_ || !items_.empty();
    });
    return pop_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  bool is_full() const SDS_REQUIRES(mu_) {
    return capacity_ != 0 && items_.size() >= capacity_;
  }

  std::optional<T> pop_locked() SDS_REQUIRES(mu_) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable Mutex mu_{LockRank::kQueue};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ SDS_GUARDED_BY(mu_);
  bool closed_ SDS_GUARDED_BY(mu_) = false;
};

}  // namespace sds
