// Closable bounded/unbounded MPMC queues used by transports and runtimes.
//
// A closed queue rejects pushes and drains remaining items; pop() on an
// empty closed queue returns nullopt immediately. This gives clean
// shutdown semantics without sentinel items.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/clock.h"

namespace sds {

template <typename T>
class Queue {
 public:
  /// capacity == 0 means unbounded.
  explicit Queue(std::size_t capacity = 0) : capacity_(capacity) {}

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  /// Blocking push. Returns false if the queue is (or becomes) closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || !is_full(); });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || is_full()) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop. Returns nullopt once closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked();
  }

  /// Pop with relative timeout. Returns nullopt on timeout or closed+empty.
  std::optional<T> pop_for(Nanos timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout, [&] { return closed_ || !items_.empty(); });
    return pop_locked();
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  bool is_full() const { return capacity_ != 0 && items_.size() >= capacity_; }

  std::optional<T> pop_locked() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace sds
