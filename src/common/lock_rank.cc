#include "common/lock_rank.h"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

namespace sds {

const char* to_string(LockRank rank) {
  switch (rank) {
    case LockRank::kUnranked: return "kUnranked";
    case LockRank::kRuntimeServer: return "kRuntimeServer";
    case LockRank::kCycleStats: return "kCycleStats";
    case LockRank::kRpcDispatcher: return "kRpcDispatcher";
    case LockRank::kRpcGather: return "kRpcGather";
    case LockRank::kChaosNetwork: return "kChaosNetwork";
    case LockRank::kTransportNetwork: return "kTransportNetwork";
    case LockRank::kTransportEndpoint: return "kTransportEndpoint";
    case LockRank::kStage: return "kStage";
    case LockRank::kMonitor: return "kMonitor";
    case LockRank::kQueue: return "kQueue";
    case LockRank::kThreadPool: return "kThreadPool";
    case LockRank::kSimLaneTeam: return "kSimLaneTeam";
    case LockRank::kWaitGroup: return "kWaitGroup";
    case LockRank::kTelemetryReporter: return "kTelemetryReporter";
    case LockRank::kTelemetryRegistry: return "kTelemetryRegistry";
    case LockRank::kTelemetryTracer: return "kTelemetryTracer";
    case LockRank::kTelemetryInstrument: return "kTelemetryInstrument";
    case LockRank::kLog: return "kLog";
    case LockRank::kLeaf: return "kLeaf";
  }
  return "?";
}

#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS

namespace lock_order {
namespace {

struct Held {
  const void* mu;
  LockRank rank;
};

// One stack per thread. A plain vector: the stack is tiny (2-3 deep in
// the deepest real paths) and only ever touched by its own thread.
thread_local std::vector<Held> t_held;

void default_handler(const char* message) {
  std::fprintf(stderr, "%s\n", message);
  std::abort();
}

ViolationHandler g_handler = default_handler;

}  // namespace

void note_acquire(const void* mu, LockRank rank) {
  if (rank != LockRank::kUnranked) {
    for (const Held& held : t_held) {
      if (held.rank != LockRank::kUnranked && held.rank >= rank) {
        char msg[256];
        std::snprintf(msg, sizeof(msg),
                      "lock-order violation: acquiring a %s (%u) mutex while "
                      "holding a %s (%u) mutex; acquisition ranks must be "
                      "strictly increasing (see common/lock_rank.h)",
                      to_string(rank), static_cast<unsigned>(rank),
                      to_string(held.rank), static_cast<unsigned>(held.rank));
        g_handler(msg);
        break;  // report once per acquire; a test handler may return
      }
    }
  }
  t_held.push_back({mu, rank});
}

void note_release(const void* mu) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::size_t held_count() { return t_held.size(); }

ViolationHandler set_violation_handler(ViolationHandler handler) {
  ViolationHandler previous = g_handler;
  g_handler = handler == nullptr ? default_handler : handler;
  return previous;
}

}  // namespace lock_order

#endif  // SDS_LOCK_ORDER_CHECKS

}  // namespace sds
