// Fixed-size thread pool with a companion WaitGroup for fork/join phases.
//
// The control plane's live runtime uses this for parallel collect/enforce
// fan-out; the simulator does not (it is single-threaded by design).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace sds {

/// Counts outstanding work; wait() blocks until the count returns to zero.
class WaitGroup {
 public:
  void add(std::size_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_ = 0;
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns false after shutdown began.
  bool submit(std::function<void()> task);

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Stop accepting work and join all workers (drains queued tasks first).
  void shutdown();

 private:
  void worker_loop();

  Queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

}  // namespace sds
