// Work-stealing thread pool with a companion WaitGroup for fork/join
// phases.
//
// Used by the bench sweep runner to spread independent (scale, topology)
// configurations across cores, and available to the live runtime for
// parallel fan-out. Design: one deque per worker; a worker pops its own
// queue from the back (LIFO keeps caches warm) and steals from other
// queues' fronts when its own runs dry, so an uneven sweep (one 10,000-
// stage config next to nine small ones) still keeps every core busy.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace sds {

/// Counts outstanding work; wait() blocks until the count returns to zero.
class WaitGroup {
 public:
  void add(std::size_t n = 1) SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    count_ += n;
  }

  void done() SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void wait() SDS_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    cv_.wait(lock, [&]() SDS_REQUIRES(mu_) { return count_ == 0; });
  }

 private:
  Mutex mu_{LockRank::kWaitGroup};
  CondVar cv_;
  std::size_t count_ SDS_GUARDED_BY(mu_) = 0;
};

namespace common {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns false after shutdown began. Tasks queued
  /// before shutdown always run (shutdown drains before joining).
  bool submit(Task task) SDS_EXCLUDES(sleep_mu_);

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Every index runs exactly once even if the pool is shutting down
  /// (inline fallback). If any invocation throws, the first exception is
  /// rethrown here after all indices finish.
  ///
  /// Safe to call from inside a pool worker: nested calls run all
  /// indices inline on the calling thread instead of submitting. A
  /// worker that submitted chunks and then blocked in wait() could
  /// deadlock a small pool (every worker parked waiting on work that
  /// sits behind it in the queues) and would oversubscribe a large one.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is a worker of *any* ThreadPool.
  /// Nested fork/join layers (e.g. the sim lane runner invoked from a
  /// bench --jobs worker) use this to fall back to inline execution
  /// rather than stacking thread teams on the same cores.
  [[nodiscard]] static bool in_worker();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Stop accepting work, drain all queued tasks, join all workers.
  void shutdown() SDS_EXCLUDES(sleep_mu_);

 private:
  /// One worker's deque. The owner pops from the back; thieves take from
  /// the front, so steals grab the oldest (likely largest-remaining) work.
  struct WorkerQueue {
    Mutex mu{LockRank::kThreadPool};
    std::deque<Task> tasks SDS_GUARDED_BY(mu);
  };

  bool try_pop(std::size_t self, Task& out);
  void worker_loop(std::size_t self) SDS_EXCLUDES(sleep_mu_);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Same rank as the worker queues: the two are only ever taken in
  // separate scopes (submit reserves under sleep_mu_, releases, then
  // pushes under the queue lock), never nested.
  Mutex sleep_mu_{LockRank::kThreadPool};
  CondVar sleep_cv_;
  std::atomic<std::size_t> pending_{0};     // queued, not yet popped
  std::atomic<std::size_t> next_queue_{0};  // round-robin submit target
  std::atomic<bool> accepting_{true};
  std::atomic<bool> joining_{false};
};

}  // namespace common

using common::ThreadPool;

}  // namespace sds
