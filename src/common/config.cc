#include "common/config.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace sds {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Result<Config> Config::from_string(std::string_view text) {
  Config config;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = std::min(text.find('\n', pos), text.size());
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::invalid_argument("config line " + std::to_string(line_no) +
                                      ": missing '='");
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::invalid_argument("config line " + std::to_string(line_no) +
                                      ": empty key");
    }
    config.set(std::string(key), std::string(value));
  }
  return config;
}

Result<Config> Config::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::not_found("config file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_string(ss.str());
}

std::vector<std::string> Config::apply_args(int argc, const char* const* argv) {
  std::vector<std::string> rest;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.starts_with("--")) {
      const auto body = arg.substr(2);
      if (const auto eq = body.find('='); eq != std::string_view::npos) {
        set(std::string(body.substr(0, eq)), std::string(body.substr(eq + 1)));
        continue;
      }
    }
    rest.emplace_back(arg);
  }
  return rest;
}

void Config::set(std::string key, std::string value) {
  entries_.insert_or_assign(std::move(key), std::move(value));
}

bool Config::contains(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

std::optional<std::string> Config::get(std::string_view key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_or(std::string_view key, std::string fallback) const {
  auto v = get(key);
  return v ? *v : std::move(fallback);
}

Result<std::int64_t> Config::get_int(std::string_view key) const {
  const auto v = get(key);
  if (!v) return Status::not_found(std::string(key));
  std::int64_t out{};
  const auto [ptr, ec] = std::from_chars(v->data(), v->data() + v->size(), out);
  if (ec != std::errc{} || ptr != v->data() + v->size()) {
    return Status::invalid_argument(std::string(key) + ": not an integer: " + *v);
  }
  return out;
}

std::int64_t Config::get_int_or(std::string_view key, std::int64_t fallback) const {
  const auto r = get_int(key);
  return r.is_ok() ? r.value() : fallback;
}

Result<double> Config::get_double(std::string_view key) const {
  const auto v = get(key);
  if (!v) return Status::not_found(std::string(key));
  try {
    std::size_t consumed = 0;
    const double out = std::stod(*v, &consumed);
    if (consumed != v->size()) {
      return Status::invalid_argument(std::string(key) + ": not a number: " + *v);
    }
    return out;
  } catch (const std::exception&) {
    return Status::invalid_argument(std::string(key) + ": not a number: " + *v);
  }
}

double Config::get_double_or(std::string_view key, double fallback) const {
  const auto r = get_double(key);
  return r.is_ok() ? r.value() : fallback;
}

Result<bool> Config::get_bool(std::string_view key) const {
  const auto v = get(key);
  if (!v) return Status::not_found(std::string(key));
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") return false;
  return Status::invalid_argument(std::string(key) + ": not a bool: " + *v);
}

bool Config::get_bool_or(std::string_view key, bool fallback) const {
  const auto r = get_bool(key);
  return r.is_ok() ? r.value() : fallback;
}

void Config::merge_from(const Config& other) {
  for (const auto& [k, v] : other.entries_) entries_.insert_or_assign(k, v);
}

}  // namespace sds
