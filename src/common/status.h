// Minimal Status / Result<T> error-handling vocabulary.
//
// sdscale avoids exceptions on hot paths; fallible operations return a
// Status or Result<T>. Both are cheap to move and carry a code + message.
#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace sds {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,   // e.g. connection cap reached
  kUnavailable,         // peer down / transport closed
  kDeadlineExceeded,
  kFailedPrecondition,
  kInternal,
  kCancelled,
  kOutOfRange,
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  [[nodiscard]] static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  [[nodiscard]] static Status already_exists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  [[nodiscard]] static Status resource_exhausted(std::string m) {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  [[nodiscard]] static Status unavailable(std::string m) {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  [[nodiscard]] static Status deadline_exceeded(std::string m) {
    return {StatusCode::kDeadlineExceeded, std::move(m)};
  }
  [[nodiscard]] static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  [[nodiscard]] static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }
  [[nodiscard]] static Status cancelled(std::string m) {
    return {StatusCode::kCancelled, std::move(m)};
  }
  [[nodiscard]] static Status out_of_range(std::string m) {
    return {StatusCode::kOutOfRange, std::move(m)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    std::string out{sds::to_string(code_)};
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

/// Result<T>: either a value or an error Status. Like std::expected.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.is_ok() && "Result error constructed from OK status");
  }

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? *value_ : std::move(fallback);
  }

  T* operator->() {
    assert(is_ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(is_ok());
    return &*value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate a non-OK Status from an expression.
#define SDS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::sds::Status _sds_status = (expr);             \
    if (!_sds_status.is_ok()) return _sds_status;   \
  } while (false)

}  // namespace sds
