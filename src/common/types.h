// Strong identifier types and fundamental aliases shared across sdscale.
//
// IDs are thin wrappers over integers so that a StageId cannot be passed
// where a JobId is expected. They are hashable, comparable, and printable.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace sds {

/// CRTP-free tagged integer id. `Tag` only disambiguates the type.
template <typename Tag, typename Rep = std::uint64_t>
class TaggedId {
 public:
  using rep_type = Rep;

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  constexpr auto operator<=>(const TaggedId&) const = default;

  static constexpr Rep kInvalid = static_cast<Rep>(-1);
  static constexpr TaggedId invalid() { return TaggedId{kInvalid}; }

 private:
  Rep value_ = kInvalid;
};

template <typename Tag, typename Rep>
std::ostream& operator<<(std::ostream& os, const TaggedId<Tag, Rep>& id) {
  if (!id.valid()) return os << "<invalid>";
  return os << id.value();
}

struct NodeIdTag {};
struct StageIdTag {};
struct JobIdTag {};
struct ControllerIdTag {};
struct ConnIdTag {};

/// A physical (or simulated) compute node.
using NodeId = TaggedId<NodeIdTag, std::uint32_t>;
/// A data-plane stage instance (one per compute node in the paper's setup).
using StageId = TaggedId<StageIdTag, std::uint32_t>;
/// An HPC job; stages belong to jobs, QoS policies are expressed per job.
using JobId = TaggedId<JobIdTag, std::uint32_t>;
/// A control-plane controller (global, aggregator, or local).
using ControllerId = TaggedId<ControllerIdTag, std::uint32_t>;
/// A transport-level connection.
using ConnId = TaggedId<ConnIdTag, std::uint64_t>;

}  // namespace sds

namespace std {
template <typename Tag, typename Rep>
struct hash<sds::TaggedId<Tag, Rep>> {
  size_t operator()(const sds::TaggedId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
