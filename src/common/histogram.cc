#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <cstdio>

namespace sds {

Histogram::Histogram() : buckets_(kSubBuckets * 64, 0) {}

std::size_t Histogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const int octave = 63 - std::countl_zero(v);  // index of top set bit
  // Within octave o (values [2^o, 2^(o+1))), 16 linear sub-buckets of
  // width 2^(o-4): v >> (o-4) lands in [16, 32).
  const int shift = octave - kSubBucketBits + 1;
  const auto sub = static_cast<std::size_t>(v >> shift) - kSubBuckets / 2;
  return static_cast<std::size_t>(octave - kSubBucketBits) * (kSubBuckets / 2) +
         kSubBuckets + sub;
}

std::int64_t Histogram::bucket_upper_bound(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t rel = index - kSubBuckets;
  const std::uint64_t shift = rel / (kSubBuckets / 2) + 1;
  const std::uint64_t sub = rel % (kSubBuckets / 2) + kSubBuckets / 2;
  if (shift >= 58) return std::numeric_limits<std::int64_t>::max();
  return static_cast<std::int64_t>(((sub + 1) << shift) - 1);
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  const std::size_t idx = bucket_index(value);
  if (idx < buckets_.size()) {
    ++buckets_[idx];
  } else {
    ++buckets_.back();
  }
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  const auto x = static_cast<double>(value);
  sum_ += x;
  sum_sq_ += x * x;
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

std::int64_t Histogram::min() const { return count_ ? min_ : 0; }

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // ceil(q*count) ranks the target sample 1-based; q=0 would yield rank 0
  // and previously matched the first nonempty bucket (reporting its upper
  // bound instead of the true minimum). Rank at least 1, and clamp the
  // bucket bound into the observed [min, max] so boundary quantiles are
  // exact at both ends.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(bucket_upper_bound(i), min_, max_);
    }
  }
  return max_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = sum_sq_ = 0;
}

std::string Histogram::summary_ms() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.3fms p50=%.3fms p99=%.3fms max=%.3fms",
                static_cast<unsigned long long>(count_), mean() * 1e-6,
                static_cast<double>(percentile(0.50)) * 1e-6,
                static_cast<double>(percentile(0.99)) * 1e-6,
                static_cast<double>(max()) * 1e-6);
  return buf;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

}  // namespace sds
