// Lock ranks and the debug-build lock-order validator.
//
// Every sds::Mutex in the tree is stamped with a LockRank at its
// declaration. The rank encodes the mutex's position in the repo-wide
// acquisition order: a thread may only acquire a mutex whose rank is
// STRICTLY GREATER than every ranked mutex it already holds. Because
// the order is a single global hierarchy, any execution that obeys it
// is deadlock-free by construction — two threads can never wait on each
// other's locks in opposite orders.
//
// The hierarchy is enforced twice:
//   - statically, by `tools/sdscheck --pass=lockgraph`, which extracts
//     every Mutex declaration and every MutexLock nesting from source
//     and rejects rank inversions and cycles at lint time; and
//   - at runtime, by LockOrderValidator below: a thread-local stack of
//     held locks checked on every acquire. The checks compile to
//     nothing unless SDS_LOCK_ORDER_CHECKS is defined (CMake turns it
//     on for Debug builds, TSan builds, and -DSDS_LOCK_ORDER=ON), so
//     Release binaries pay zero bytes and zero cycles.
//
// Rank table (low = outer, acquired first; see DESIGN.md §15 for the
// full rationale per rank):
//
//   kRuntimeServer        runtime Global/Aggregator/StageHost state
//   kCycleStats           core::CycleStats recent-cycle ring
//   kRpcDispatcher        rpc::Dispatcher gather registry
//   kRpcGather            rpc::Gather per-wave state
//   kChaosNetwork         fault::ChaosNetwork delay queue (wraps inner
//                         transports, so it ranks above them... i.e.
//                         below them numerically: chaos locks first)
//   kTransportNetwork     transport::InProcNetwork address registry
//   kTransportEndpoint    per-endpoint connection/handler state
//   kStage                stage::PosixStage limiter window
//   kMonitor              monitor::ResourceMonitor collect window
//   kQueue                common::Queue<T> (bounded MPMC)
//   kThreadPool           ThreadPool worker queues + sleep mutex
//   kSimLaneTeam          sim lane-runner barrier coordination
//   kWaitGroup            common::WaitGroup counter
//   kTelemetryReporter    TelemetryReporter lifecycle flags
//   kTelemetryRegistry    MetricsRegistry instrument index
//   kTelemetryTracer      SpanTracer / FlightRecorder rings
//   kTelemetryInstrument  per-instrument HistogramMetric lock
//   kLog                  the log writer (logging is legal anywhere)
//   kLeaf                 terminal scratch locks: nothing may be
//                         acquired while one is held
//
// kUnranked opts a mutex out of order checking (test scaffolding and
// short-lived locals); sdscheck requires an explicit
// `// sdscheck: allow(lock-rank)` marker to leave a src/ mutex
// unranked.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sds {

enum class LockRank : std::uint16_t {
  kUnranked = 0,
  kRuntimeServer = 10,
  kCycleStats = 20,
  kRpcDispatcher = 30,
  kRpcGather = 40,
  kChaosNetwork = 50,
  kTransportNetwork = 60,
  kTransportEndpoint = 70,
  kStage = 80,
  kMonitor = 90,
  kQueue = 100,
  kThreadPool = 110,
  kSimLaneTeam = 120,
  kWaitGroup = 130,
  kTelemetryReporter = 140,
  kTelemetryRegistry = 150,
  kTelemetryTracer = 160,
  kTelemetryInstrument = 170,
  kLog = 180,
  kLeaf = 190,
};

[[nodiscard]] const char* to_string(LockRank rank);

namespace lock_order {

#if defined(SDS_LOCK_ORDER_CHECKS) && SDS_LOCK_ORDER_CHECKS

/// Called by Mutex/MutexLock BEFORE blocking on the underlying mutex:
/// a would-be deadlock reports instead of hanging. Unranked locks are
/// pushed for release bookkeeping but never compared.
void note_acquire(const void* mu, LockRank rank);

/// Called after the underlying mutex is released; removes the most
/// recent stack entry for `mu` (tolerates out-of-LIFO release).
void note_release(const void* mu);

/// Number of locks the calling thread currently holds (tests).
[[nodiscard]] std::size_t held_count();

/// Violation hook. The default handler prints the message and aborts;
/// tests install a capturing handler. Returns the previous handler.
using ViolationHandler = void (*)(const char* message);
ViolationHandler set_violation_handler(ViolationHandler handler);

#else

inline void note_acquire(const void* /*mu*/, LockRank /*rank*/) {}
inline void note_release(const void* /*mu*/) {}

#endif  // SDS_LOCK_ORDER_CHECKS

}  // namespace lock_order
}  // namespace sds
