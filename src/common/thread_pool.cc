#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace sds {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> task) {
  return tasks_.push(std::move(task));
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Chunk the index space so small bodies do not drown in queue overhead.
  const std::size_t chunks = std::min(n, workers_.size() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  WaitGroup wg;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = std::min(n, begin + chunk_size);
    if (begin >= end) break;
    wg.add();
    const bool queued = submit([&, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
      wg.done();
    });
    if (!queued) {
      // Pool is shutting down: run inline to preserve the contract.
      for (std::size_t i = begin; i < end; ++i) fn(i);
      wg.done();
    }
  }
  wg.wait();
}

void ThreadPool::shutdown() {
  tasks_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.pop()) {
    (*task)();
  }
}

}  // namespace sds
