#include "common/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace sds::common {

namespace {
// Set for the lifetime of every worker thread, of every pool instance.
// thread_local (not per-pool) on purpose: the hazard in_worker() guards
// against — blocking a worker on work parked behind it — exists whether
// the nested fork/join targets the same pool or a different one.
thread_local bool t_in_worker = false;
}  // namespace

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t n = std::max<std::size_t>(1, num_threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(Task task) {
  if (!task) return false;
  // Reserve the task under the sleep mutex *before* pushing it: once
  // pending_ > 0 no worker will sleep or exit, so the push below can
  // never race with shutdown into a lost task. A worker that wakes in
  // the gap simply spins through one failed try_pop and retries.
  {
    MutexLock lock(sleep_mu_);
    if (!accepting_.load(std::memory_order_relaxed)) return false;
    pending_.fetch_add(1, std::memory_order_release);
  }
  const std::size_t target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    MutexLock lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  sleep_cv_.notify_one();
  return true;
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  // Own queue first, newest task (LIFO): the data it touches is warmest.
  {
    WorkerQueue& mine = *queues_[self];
    MutexLock lock(mine.mu);
    if (!mine.tasks.empty()) {
      out = std::move(mine.tasks.back());
      mine.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // Steal the oldest task from a sibling (FIFO end): the oldest entries
  // are the most likely to represent large not-yet-started work.
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    WorkerQueue& victim = *queues_[(self + off) % queues_.size()];
    MutexLock lock(victim.mu);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_in_worker = true;
  Task task;
  for (;;) {
    if (try_pop(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    MutexLock lock(sleep_mu_);
    // pending_ > 0 means a task is queued (or about to land in a queue,
    // see submit): retry rather than sleep or exit.
    if (pending_.load(std::memory_order_acquire) > 0) continue;
    if (joining_.load(std::memory_order_acquire)) return;
    sleep_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             joining_.load(std::memory_order_acquire);
    });
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  if (in_worker()) {
    // Nested call from inside a worker: run inline. The outer
    // parallel_for already owns this core's share of the parallelism,
    // and blocking here on submitted chunks can deadlock (see header).
    // Exceptions propagate directly to the caller.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  Mutex error_mu{LockRank::kLeaf};
  std::exception_ptr first_error;
  const auto run_range = [&](std::size_t begin, std::size_t end) {
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      MutexLock lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };

  // Over-decompose 4× so stealing can rebalance uneven iteration costs.
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  WaitGroup wg;
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    const std::size_t end = std::min(n, begin + chunk_size);
    wg.add();
    const bool queued = submit([&, begin, end] {
      run_range(begin, end);
      wg.done();
    });
    if (!queued) {  // pool shut down: run inline, every index still covered
      run_range(begin, end);
      wg.done();
    }
  }
  wg.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::shutdown() {
  {
    MutexLock lock(sleep_mu_);
    if (joining_.exchange(true, std::memory_order_acq_rel)) return;
    accepting_.store(false, std::memory_order_release);
  }
  sleep_cv_.notify_all();
  // Workers keep draining until pending_ hits 0, so every task accepted
  // before shutdown still runs.
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace sds::common
