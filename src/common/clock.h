// Clock abstraction: the live runtime uses the steady clock; the simulator
// and unit tests substitute a manually-advanced clock. All sdscale time is
// carried as std::chrono::nanoseconds since an arbitrary epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace sds {

using Nanos = std::chrono::nanoseconds;

constexpr Nanos nanos(std::int64_t n) { return Nanos{n}; }
constexpr Nanos micros(std::int64_t n) { return Nanos{n * 1'000}; }
constexpr Nanos millis(std::int64_t n) { return Nanos{n * 1'000'000}; }
constexpr Nanos seconds(std::int64_t n) { return Nanos{n * 1'000'000'000}; }

constexpr double to_seconds(Nanos t) { return static_cast<double>(t.count()) * 1e-9; }
constexpr double to_millis(Nanos t) { return static_cast<double>(t.count()) * 1e-6; }
constexpr double to_micros(Nanos t) { return static_cast<double>(t.count()) * 1e-3; }

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual Nanos now() const = 0;
};

/// Wall/steady time source for the live runtime.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] Nanos now() const override {
    return std::chrono::duration_cast<Nanos>(
        std::chrono::steady_clock::now().time_since_epoch());
  }

  static SystemClock& instance() {
    static SystemClock clock;
    return clock;
  }
};

/// Manually advanced time source for tests and the discrete-event simulator.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = Nanos{0}) : now_(start.count()) {}

  [[nodiscard]] Nanos now() const override {
    return Nanos{now_.load(std::memory_order_acquire)};
  }

  void advance(Nanos delta) { now_.fetch_add(delta.count(), std::memory_order_acq_rel); }
  void set(Nanos t) { now_.store(t.count(), std::memory_order_release); }

 private:
  std::atomic<std::int64_t> now_;
};

/// Scoped stopwatch measuring elapsed time against any Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(&clock), start_(clock.now()) {}

  [[nodiscard]] Nanos elapsed() const { return clock_->now() - start_; }
  void restart() { start_ = clock_->now(); }

 private:
  const Clock* clock_;
  Nanos start_;
};

}  // namespace sds
