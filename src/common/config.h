// Flat key=value configuration with typed getters.
//
// Sources: `key=value` lines (file or string; '#' comments) and argv-style
// `--key=value` overrides. Later sources win. Keys are dot-namespaced by
// convention ("sim.link_latency_us").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sds {

class Config {
 public:
  Config() = default;

  /// Parse `key=value` lines; '#' starts a comment. Blank lines ignored.
  [[nodiscard]] static Result<Config> from_string(std::string_view text);
  [[nodiscard]] static Result<Config> from_file(const std::string& path);

  /// Apply `--key=value` arguments; non-matching arguments are returned.
  std::vector<std::string> apply_args(int argc, const char* const* argv);

  void set(std::string key, std::string value);
  [[nodiscard]] bool contains(std::string_view key) const;

  [[nodiscard]] std::optional<std::string> get(std::string_view key) const;
  [[nodiscard]] std::string get_or(std::string_view key, std::string fallback) const;
  [[nodiscard]] Result<std::int64_t> get_int(std::string_view key) const;
  [[nodiscard]] std::int64_t get_int_or(std::string_view key, std::int64_t fallback) const;
  [[nodiscard]] Result<double> get_double(std::string_view key) const;
  [[nodiscard]] double get_double_or(std::string_view key, double fallback) const;
  [[nodiscard]] Result<bool> get_bool(std::string_view key) const;
  [[nodiscard]] bool get_bool_or(std::string_view key, bool fallback) const;

  /// Merge another config on top of this one (other wins).
  void merge_from(const Config& other);

  [[nodiscard]] const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace sds
