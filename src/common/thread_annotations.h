// Clang Thread Safety Analysis annotations.
//
// These macros wrap Clang's capability attributes so the compiler can
// prove lock discipline at build time: every member annotated with
// SDS_GUARDED_BY(mu) may only be touched while `mu` is held, functions
// annotated SDS_REQUIRES(mu) may only be called with `mu` held, and so
// on. Under any compiler without the attributes (GCC, MSVC) they expand
// to nothing, so annotated code stays portable.
//
// Enable the analysis with Clang via the SDS_THREAD_SAFETY CMake option,
// which adds -Wthread-safety -Werror. The annotated primitives that the
// analysis understands live in common/mutex.h (Mutex, MutexLock,
// CondVar); prefer them over raw std::mutex in new code.
#pragma once

#if defined(__clang__) && !defined(SDS_NO_THREAD_SAFETY_ANNOTATIONS)
#define SDS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SDS_THREAD_ANNOTATION_(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability ("mutex").
#define SDS_CAPABILITY(x) SDS_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime holds a capability.
#define SDS_SCOPED_CAPABILITY SDS_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while `x` is held.
#define SDS_GUARDED_BY(x) SDS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define SDS_PT_GUARDED_BY(x) SDS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry.
#define SDS_REQUIRES(...) \
  SDS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define SDS_ACQUIRE(...) \
  SDS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define SDS_RELEASE(...) \
  SDS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function acquires the capability only when returning `b`.
#define SDS_TRY_ACQUIRE(b, ...) \
  SDS_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define SDS_EXCLUDES(...) SDS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Lock-ordering hints for deadlock detection.
#define SDS_ACQUIRED_BEFORE(...) \
  SDS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SDS_ACQUIRED_AFTER(...) \
  SDS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define SDS_RETURN_CAPABILITY(x) SDS_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts (at analysis time) that the capability is already held.
#define SDS_ASSERT_CAPABILITY(x) \
  SDS_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Use only where
/// the locking pattern is provably safe but inexpressible (e.g. lambdas
/// invoked while the lock is held by the caller).
#define SDS_NO_THREAD_SAFETY_ANALYSIS \
  SDS_THREAD_ANNOTATION_(no_thread_safety_analysis)
