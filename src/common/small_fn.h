// SmallFn — a move-only `void()` callable with small-buffer optimization.
//
// std::function heap-allocates any closure larger than ~2 pointers, which
// makes it the dominant allocation source in the simulator's event loop
// (every scheduled event wraps a capture-rich lambda). SmallFn stores
// closures up to kSmallFnInlineBytes inline — sized so the simulator's
// hot-path closures (a `this` pointer, a couple of indices, a by-value
// StageMetrics, or a nested SmallFn continuation) never touch the heap —
// and falls back to the heap only for oversized captures.
//
// Differences from std::function: move-only (so move-only captures work),
// no target introspection, invoking an empty SmallFn is undefined.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace sds {

/// Inline capture capacity. 88 bytes keeps sizeof(SmallFn) == 96 and lets
/// a closure embed one SmallFn continuation plus a pointer — the nesting
/// the simulator's send→NIC→arrival chains produce.
inline constexpr std::size_t kSmallFnInlineBytes = 88;

class SmallFn {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kSmallFnInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Construct a closure directly in this cell (one placement-new, no
  /// intermediate SmallFn + relocate) — the engine's slab fast path.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& fn) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kSmallFnInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  void emplace(SmallFn&& other) { *this = std::move(other); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `to` from `from`, then destroy `from`.
    void (*relocate)(void* to, void* from);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* to, void* from) {
        Fn* src = std::launder(reinterpret_cast<Fn*>(from));
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops heap_ops{
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* to, void* from) {
        // A pointer is trivially destructible; copying it suffices.
        ::new (to) Fn*(*std::launder(reinterpret_cast<Fn**>(from)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); }};

  alignas(std::max_align_t) unsigned char storage_[kSmallFnInlineBytes];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(SmallFn) == kSmallFnInlineBytes + sizeof(void*));

}  // namespace sds
