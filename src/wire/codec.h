// Binary wire codec: little-endian fixed-width integers, LEB128 varints,
// zigzag signed varints, IEEE doubles, and length-prefixed strings/vectors.
//
// Decoder uses a sticky error flag: any underflow or malformed varint sets
// the flag and makes every later read return a zero value, so message
// decoders can read unconditionally and check ok() once at the end.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sds::wire {

using Bytes = std::vector<std::uint8_t>;

class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(Bytes& out) : out_(&out) {}

  [[nodiscard]] const Bytes& bytes() const { return out_ ? *out_ : owned_; }
  [[nodiscard]] Bytes take() { return std::move(buffer()); }
  [[nodiscard]] std::size_t size() const { return buffer().size(); }
  void reserve(std::size_t n) { buffer().reserve(n); }
  void clear() { buffer().clear(); }

  void put_u8(std::uint8_t v) { buffer().push_back(v); }

  void put_u16(std::uint16_t v) { put_fixed(v); }
  void put_u32(std::uint32_t v) { put_fixed(v); }
  void put_u64(std::uint64_t v) { put_fixed(v); }

  /// LEB128 unsigned varint (1–10 bytes). The byte count comes from
  /// std::bit_width (one instruction) so the buffer grows exactly once;
  /// the write loop then has a known trip count instead of testing the
  /// remaining value every byte.
  void put_varint(std::uint64_t v) {
    auto& buf = buffer();
    const std::size_t n = varint_size(v);
    const std::size_t old = buf.size();
    buf.resize(old + n);
    std::uint8_t* p = buf.data() + old;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      p[i] = static_cast<std::uint8_t>(v) | 0x80;
      v >>= 7;
    }
    p[n - 1] = static_cast<std::uint8_t>(v);
  }

  /// Zigzag-encoded signed varint.
  void put_svarint(std::int64_t v) {
    put_varint((static_cast<std::uint64_t>(v) << 1) ^
               static_cast<std::uint64_t>(v >> 63));
  }

  void put_double(double v) { put_fixed(std::bit_cast<std::uint64_t>(v)); }
  /// Lossy 32-bit float — used for compact per-stage digests.
  void put_f32(float v) { put_fixed(std::bit_cast<std::uint32_t>(v)); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_string(std::string_view s) {
    put_varint(s.size());
    auto& buf = buffer();
    buf.insert(buf.end(), s.begin(), s.end());
  }

  void put_raw(std::span<const std::uint8_t> data) {
    auto& buf = buffer();
    buf.insert(buf.end(), data.begin(), data.end());
  }

  /// Encoded size of a varint without encoding it (for wire_size()).
  /// Constant-time: ceil(bit_width / 7), with `| 1` making zero one byte.
  [[nodiscard]] static constexpr std::size_t varint_size(std::uint64_t v) {
    return (static_cast<std::size_t>(std::bit_width(v | 1)) + 6) / 7;
  }

 private:
  template <typename T>
  void put_fixed(T v) {
    static_assert(std::endian::native == std::endian::little,
                  "big-endian hosts need byte swaps here");
    auto& buf = buffer();
    const auto old = buf.size();
    buf.resize(old + sizeof(T));
    std::memcpy(buf.data() + old, &v, sizeof(T));
  }

  Bytes& buffer() { return out_ ? *out_ : owned_; }
  [[nodiscard]] const Bytes& buffer() const { return out_ ? *out_ : owned_; }

  Bytes owned_;
  Bytes* out_ = nullptr;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data, size) {}
  explicit Decoder(const Bytes& data) : data_(data.data(), data.size()) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool fully_consumed() const { return ok_ && remaining() == 0; }

  std::uint8_t get_u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t get_u16() { return get_fixed<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_fixed<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_fixed<std::uint64_t>(); }

  std::uint64_t get_varint() {
    std::uint64_t result = 0;
    int shift = 0;
    while (true) {
      if (!ensure(1)) return 0;
      const std::uint8_t byte = data_[pos_++];
      if (shift == 63 && (byte & 0x7E) != 0) {  // overflow past 64 bits
        ok_ = false;
        return 0;
      }
      result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return result;
      shift += 7;
      if (shift > 63) {
        ok_ = false;
        return 0;
      }
    }
  }

  std::int64_t get_svarint() {
    const std::uint64_t z = get_varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  double get_double() { return std::bit_cast<double>(get_u64()); }
  float get_f32() { return std::bit_cast<float>(get_u32()); }
  bool get_bool() { return get_u8() != 0; }

  std::string get_string() {
    const std::uint64_t len = get_varint();
    if (!ensure(len)) return {};
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  std::span<const std::uint8_t> get_raw(std::size_t n) {
    if (!ensure(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void mark_bad() { ok_ = false; }

 private:
  bool ensure(std::uint64_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <typename T>
  T get_fixed() {
    if (!ensure(sizeof(T))) return T{};
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace sds::wire
