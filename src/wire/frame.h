// Transport frame: fixed 12-byte header followed by the message payload.
//
//   magic   u32  'S','D','S','1'
//   type    u16  proto::MessageType
//   flags   u16  bit 0: trace-context trailer present (rest reserved, 0)
//   length  u32  payload byte count (including any trailer)
//
// TCP streams carry back-to-back frames; the in-process transport and the
// simulator carry Frame objects directly (payload sizes still count).
//
// Trace context rides as a fixed 16-byte trailer *after* the message
// payload — (trace_id u64, parent_span u64, little-endian) — flagged by
// kFlagTraceContext. Decoders that strip the trailer hand the message
// codecs exactly the payload they always saw, so tracing never perturbs
// message encoding, and a peer that predates tracing still parses the
// header (flags were always reserved-zero before).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/status.h"
#include "wire/codec.h"

namespace sds::wire {

constexpr std::uint32_t kFrameMagic = 0x31534453;  // "SDS1" little-endian
constexpr std::size_t kFrameHeaderSize = 12;
/// Upper bound on a single frame payload (guards against corrupt lengths).
constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Header flags bit 0: a 16-byte trace-context trailer follows the payload.
constexpr std::uint16_t kFlagTraceContext = 0x1;
/// Wire size of the trace-context trailer (two fixed u64s).
constexpr std::size_t kTraceContextSize = 16;

/// Compact causal context carried across wire hops: which per-cycle trace
/// a message belongs to and which span caused it. trace_id is the cycle
/// number by convention (unique enough per run, stable across lanes).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  void encode(Encoder& enc) const {
    enc.put_u64(trace_id);
    enc.put_u64(parent_span);
  }

  [[nodiscard]] static TraceContext decode_trailer(
      std::span<const std::uint8_t> trailer) {
    Decoder dec(trailer);
    TraceContext ctx;
    ctx.trace_id = dec.get_u64();
    ctx.parent_span = dec.get_u64();
    return ctx;
  }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

struct FrameHeader {
  std::uint16_t type = 0;
  std::uint16_t flags = 0;
  std::uint32_t length = 0;

  void encode(Encoder& enc) const {
    enc.put_u32(kFrameMagic);
    enc.put_u16(type);
    enc.put_u16(flags);
    enc.put_u32(length);
  }

  [[nodiscard]] static Result<FrameHeader> decode(std::span<const std::uint8_t> buf) {
    if (buf.size() < kFrameHeaderSize) {
      return Status::invalid_argument("short frame header");
    }
    Decoder dec(buf.subspan(0, kFrameHeaderSize));
    if (dec.get_u32() != kFrameMagic) {
      return Status::invalid_argument("bad frame magic");
    }
    FrameHeader h;
    h.type = dec.get_u16();
    h.flags = dec.get_u16();
    h.length = dec.get_u32();
    if (h.length > kMaxFramePayload) {
      return Status::out_of_range("frame payload too large");
    }
    return h;
  }
};

/// A complete message as carried by a transport. `trace`, when set, is
/// carried out-of-band: in-process transports move the Frame (and the
/// context with it); byte transports append the trailer and re-attach it
/// on decode, so `payload` is always exactly the message bytes.
struct Frame {
  std::uint16_t type = 0;
  Bytes payload;
  std::optional<TraceContext> trace;

  [[nodiscard]] std::size_t wire_size() const {
    return kFrameHeaderSize + payload.size() +
           (trace ? kTraceContextSize : 0);
  }

  /// Serialize header+payload(+trace trailer) into a flat byte buffer
  /// (for TCP writes).
  [[nodiscard]] Bytes serialize() const {
    Encoder enc;
    enc.reserve(wire_size());
    const std::uint16_t flags = trace ? kFlagTraceContext : 0;
    const auto body = payload.size() + (trace ? kTraceContextSize : 0);
    FrameHeader h{type, flags, static_cast<std::uint32_t>(body)};
    h.encode(enc);
    enc.put_raw(payload);
    if (trace) trace->encode(enc);
    return enc.take();
  }
};

}  // namespace sds::wire
