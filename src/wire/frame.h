// Transport frame: fixed 12-byte header followed by the message payload.
//
//   magic   u32  'S','D','S','1'
//   type    u16  proto::MessageType
//   flags   u16  reserved (0)
//   length  u32  payload byte count
//
// TCP streams carry back-to-back frames; the in-process transport and the
// simulator carry Frame objects directly (payload sizes still count).
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/status.h"
#include "wire/codec.h"

namespace sds::wire {

constexpr std::uint32_t kFrameMagic = 0x31534453;  // "SDS1" little-endian
constexpr std::size_t kFrameHeaderSize = 12;
/// Upper bound on a single frame payload (guards against corrupt lengths).
constexpr std::uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

struct FrameHeader {
  std::uint16_t type = 0;
  std::uint16_t flags = 0;
  std::uint32_t length = 0;

  void encode(Encoder& enc) const {
    enc.put_u32(kFrameMagic);
    enc.put_u16(type);
    enc.put_u16(flags);
    enc.put_u32(length);
  }

  [[nodiscard]] static Result<FrameHeader> decode(std::span<const std::uint8_t> buf) {
    if (buf.size() < kFrameHeaderSize) {
      return Status::invalid_argument("short frame header");
    }
    Decoder dec(buf.subspan(0, kFrameHeaderSize));
    if (dec.get_u32() != kFrameMagic) {
      return Status::invalid_argument("bad frame magic");
    }
    FrameHeader h;
    h.type = dec.get_u16();
    h.flags = dec.get_u16();
    h.length = dec.get_u32();
    if (h.length > kMaxFramePayload) {
      return Status::out_of_range("frame payload too large");
    }
    return h;
  }
};

/// A complete message as carried by a transport.
struct Frame {
  std::uint16_t type = 0;
  Bytes payload;

  [[nodiscard]] std::size_t wire_size() const {
    return kFrameHeaderSize + payload.size();
  }

  /// Serialize header+payload into a flat byte buffer (for TCP writes).
  [[nodiscard]] Bytes serialize() const {
    Encoder enc;
    enc.reserve(wire_size());
    FrameHeader h{type, 0, static_cast<std::uint32_t>(payload.size())};
    h.encode(enc);
    enc.put_raw(payload);
    return enc.take();
  }
};

}  // namespace sds::wire
