// SharedFrame — a message encoded once, broadcast many times.
//
// The global controller's collect/enforce/heartbeat phases send one
// identical message to N connections. The naive path re-encodes (or at
// least re-copies) the payload per connection; at 2,500 connections per
// node that is thousands of avoidable allocations and memcpys inside the
// very phase latencies the paper measures. A SharedFrame holds the
// complete wire image (12-byte header + payload) in one ref-counted
// buffer: encode once, then every endpoint queues the same immutable
// bytes. TCP writes it directly (writev); in-process delivery hands the
// receiver a view and pays exactly one copy at the receiving end, which
// is the copy a real NIC would make.
//
// Buffers come from a thread-local pool, so steady-state broadcasts
// allocate nothing: when the last reference drops, the buffer returns to
// the releasing thread's pool (each pool is touched only by its own
// thread — no locks). EncodeStats counts encodes and pool traffic so
// tests can assert the exactly-one-encode-per-wave invariant.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "wire/frame.h"

namespace sds::wire {

/// Process-wide counters for the shared-frame fast path. Monotonic,
/// relaxed atomics; tests snapshot deltas around a broadcast wave.
struct EncodeStats {
  inline static std::atomic<std::uint64_t> frames_encoded{0};
  inline static std::atomic<std::uint64_t> pool_hits{0};
  inline static std::atomic<std::uint64_t> pool_misses{0};
  inline static std::atomic<std::uint64_t> pool_returns{0};
};

namespace detail {

/// Thread-local free list of encode buffers. Buffers may be released on
/// a different thread than they were acquired on (e.g. the TCP event
/// loop drops the last reference); they simply join that thread's pool.
class BufferPool {
 public:
  static constexpr std::size_t kMaxPooled = 64;
  /// Buffers that grew beyond this are freed instead of pooled, so one
  /// huge frame can't pin memory forever.
  static constexpr std::size_t kMaxPooledCapacity = 256 * 1024;

  static BufferPool& local() {
    thread_local BufferPool pool;
    return pool;
  }

  Bytes acquire() {
    if (free_.empty()) {
      EncodeStats::pool_misses.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    EncodeStats::pool_hits.fetch_add(1, std::memory_order_relaxed);
    Bytes buf = std::move(free_.back());
    free_.pop_back();
    buf.clear();
    return buf;
  }

  void release(Bytes&& buf) {
    if (free_.size() >= kMaxPooled || buf.capacity() > kMaxPooledCapacity) {
      return;  // let it free
    }
    EncodeStats::pool_returns.fetch_add(1, std::memory_order_relaxed);
    free_.push_back(std::move(buf));
  }

 private:
  std::vector<Bytes> free_;
};

/// shared_ptr control block payload: returns the buffer to the pool of
/// whichever thread drops the last reference.
struct PooledImage {
  Bytes bytes;
  explicit PooledImage(Bytes&& b) : bytes(std::move(b)) {}
  PooledImage(const PooledImage&) = delete;
  PooledImage& operator=(const PooledImage&) = delete;
  ~PooledImage() { BufferPool::local().release(std::move(bytes)); }
};

}  // namespace detail

class SharedFrame {
 public:
  SharedFrame() = default;

  /// Encode once: header for `type` plus the payload written by
  /// `encode_payload(Encoder&)`, into a pooled buffer. `size_hint` sizes
  /// the reservation (messages expose wire_size() for exactly this); the
  /// header's length field is patched from the bytes actually written.
  template <typename PayloadWriter>
  [[nodiscard]] static SharedFrame encode(
      std::uint16_t type, std::size_t size_hint,
      PayloadWriter&& encode_payload,
      std::optional<TraceContext> trace = std::nullopt) {
    Bytes buf = detail::BufferPool::local().acquire();
    Encoder enc(buf);
    enc.reserve(kFrameHeaderSize + size_hint);
    const std::uint16_t flags = trace ? kFlagTraceContext : 0;
    const FrameHeader header{type, flags,
                             static_cast<std::uint32_t>(size_hint)};
    header.encode(enc);
    encode_payload(enc);
    if (trace) trace->encode(enc);
    const auto length = static_cast<std::uint32_t>(buf.size() - kFrameHeaderSize);
    std::memcpy(buf.data() + 8, &length, sizeof(length));
    EncodeStats::frames_encoded.fetch_add(1, std::memory_order_relaxed);
    SharedFrame out;
    out.type_ = type;
    out.flags_ = flags;
    out.image_ = std::make_shared<detail::PooledImage>(std::move(buf));
    return out;
  }

  /// Wrap an already-built Frame (one serialize; used at API boundaries
  /// that only have a Frame).
  [[nodiscard]] static SharedFrame from_frame(const Frame& frame) {
    return encode(
        frame.type, frame.payload.size(),
        [&frame](Encoder& enc) { enc.put_raw(frame.payload); }, frame.trace);
  }

  [[nodiscard]] bool empty() const { return image_ == nullptr; }
  [[nodiscard]] std::uint16_t type() const { return type_; }

  /// The full wire image (header + payload) — what TCP writes.
  [[nodiscard]] std::span<const std::uint8_t> wire_image() const {
    return image_ ? std::span<const std::uint8_t>(image_->bytes)
                  : std::span<const std::uint8_t>{};
  }

  /// Payload view (what the frame handler on the receiving side sees) —
  /// the trace trailer, if any, is excluded.
  [[nodiscard]] std::span<const std::uint8_t> payload() const {
    auto image = wire_image();
    if (image.size() < kFrameHeaderSize) return {};
    auto body = image.subspan(kFrameHeaderSize);
    if ((flags_ & kFlagTraceContext) != 0 &&
        body.size() >= kTraceContextSize) {
      body = body.first(body.size() - kTraceContextSize);
    }
    return body;
  }

  [[nodiscard]] std::size_t wire_size() const { return wire_image().size(); }

  /// Reference count (diagnostics/tests only).
  [[nodiscard]] long use_count() const { return image_.use_count(); }

  /// Materialize an owned Frame — the receiving side's single copy. The
  /// trace trailer (if present) is decoded back into `Frame::trace`.
  [[nodiscard]] Frame to_frame() const {
    Frame frame;
    frame.type = type_;
    const auto p = payload();
    frame.payload.assign(p.begin(), p.end());
    if ((flags_ & kFlagTraceContext) != 0) {
      auto image = wire_image();
      if (image.size() >= kFrameHeaderSize + kTraceContextSize) {
        frame.trace = TraceContext::decode_trailer(
            image.last(kTraceContextSize));
      }
    }
    return frame;
  }

 private:
  std::shared_ptr<const detail::PooledImage> image_;
  std::uint16_t type_ = 0;
  std::uint16_t flags_ = 0;
};

}  // namespace sds::wire
