// Scenario: an LLM-training job shares the PFS with best-effort analytics
// (the data-centric workloads the paper's introduction motivates). The
// training job gets a 4x QoS weight; PSFA guarantees it the lion's share
// under contention but — crucially — gives its unused budget away when it
// idles between epochs ("proportional sharing without false allocation").
#include <cstdio>

#include "runtime/deployment.h"
#include "workload/generators.h"

using namespace sds;
using namespace sds::runtime;

int main() {
  transport::InProcNetwork network;
  DeploymentOptions options;
  options.num_stages = 8;
  options.stages_per_job = 4;  // job 0 = training, job 1 = analytics
  options.budgets = {10'000.0, 1'000.0};

  // Training alternates epochs: heavy I/O for 2 s, idle (compute-bound)
  // for 2 s. Analytics wants as much as it can get, always.
  options.demand_factory = [](StageId stage, stage::Dimension dim) {
    const bool training = stage.value() < 4;
    const double scale = dim == stage::Dimension::kData ? 1.0 : 0.1;
    if (training) {
      return workload::bursty(5000.0 * scale, 0.0, seconds(2), seconds(2));
    }
    return workload::constant(5000.0 * scale);
  };

  auto deployment = Deployment::create(network, options);
  if (!deployment.is_ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 deployment.status().to_string().c_str());
    return 1;
  }
  auto& cluster = **deployment;
  cluster.global().set_job_weight(JobId{0}, 4.0);  // training priority

  std::printf("%-8s %14s %14s %s\n", "time", "training(ops/s)",
              "analytics(ops/s)", "phase");
  const Nanos start = SystemClock::instance().now();
  for (int tick = 0; tick < 10; ++tick) {
    // A control cycle every ~400 ms of wall time (demands are functions
    // of real time here).
    (void)cluster.global().run_cycle();
    double training = 0;
    double analytics = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
      const double limit =
          cluster.stage_limit(StageId{i}, stage::Dimension::kData).value();
      (i < 4 ? training : analytics) += limit;
    }
    const double t = to_seconds(SystemClock::instance().now() - start);
    const bool burst = static_cast<long>(t) % 4 < 2;
    std::printf("%6.1fs %14.0f %14.0f  %s\n", t, training, analytics,
                burst ? "training burst: weight 4x binds"
                      : "training idle: analytics absorbs the budget");
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }

  std::printf(
      "\nDuring bursts the 4x weight gives training ~80%% of the budget;\n"
      "while it idles, PSFA hands (nearly) the whole budget to analytics\n"
      "instead of falsely reserving it — the paper's PSFA property.\n");
  return 0;
}
