// Scenario: taming a metadata-intensive job (the Cheferd use case the
// control plane was built for). A "storm" job hammers the PFS metadata
// servers with open/stat/create calls — the classic untar-a-dataset or
// hyperparameter-sweep pattern — while a well-behaved job streams data.
//
// This example drives the *real* enforcement path: PosixStage admission
// control (token buckets per dimension) + the sans-I/O
// GlobalControllerCore, wired directly without transports, showing the
// library's layered API.
#include <cstdio>
#include <vector>

#include "core/global.h"
#include "stage/posix_stage.h"

using namespace sds;

namespace {

/// Drive both jobs concurrently for `window`: each simulation step the
/// storm wants 10 metadata ops and the stream wants 10 data ops. Returns
/// the admitted counts.
struct Admitted {
  std::uint64_t storm_meta = 0;
  std::uint64_t stream_data = 0;
};

Admitted drive(stage::PosixStage& storm, stage::PosixStage& stream,
               ManualClock& clock, Nanos window, Nanos step) {
  Admitted admitted;
  const Nanos end = clock.now() + window;
  while (clock.now() < end) {
    for (int burst = 0; burst < 10; ++burst) {
      if (storm.try_submit(stage::OpClass::kOpen)) ++admitted.storm_meta;
      if (stream.try_submit(stage::OpClass::kRead)) ++admitted.stream_data;
    }
    clock.advance(step);
  }
  return admitted;
}

}  // namespace

int main() {
  ManualClock clock;

  // Two single-stage jobs: job 0 is the metadata storm, job 1 streams data.
  stage::PosixStage storm({StageId{0}, NodeId{0}, JobId{0}, "c001"}, clock);
  stage::PosixStage stream({StageId{1}, NodeId{1}, JobId{1}, "c002"}, clock);

  core::GlobalOptions options;
  options.budgets = {50'000.0, 2'000.0};  // MDS sustains 2k metadata ops/s
  core::GlobalControllerCore controller(options);

  std::printf("%-6s %18s %18s %14s %14s\n", "cycle", "storm meta(adm/s)",
              "stream data(adm/s)", "storm limit", "stream limit");

  for (int cycle = 1; cycle <= 6; ++cycle) {
    // Drive one second of workload under the current limits.
    const Admitted admitted =
        drive(storm, stream, clock, seconds(1), micros(500));

    // One control cycle: collect -> PSFA -> enforce.
    (void)controller.begin_cycle();
    const std::vector<proto::StageMetrics> metrics = {storm.collect(cycle),
                                                      stream.collect(cycle)};
    const auto result = controller.compute(metrics);
    for (const auto& rule : result.rules) {
      (rule.stage_id == StageId{0} ? storm : stream).apply(rule);
    }

    std::printf("%-6d %18llu %18llu %14.0f %14.0f\n", cycle,
                static_cast<unsigned long long>(admitted.storm_meta),
                static_cast<unsigned long long>(admitted.stream_data),
                storm.limit(stage::Dimension::kMeta),
                stream.limit(stage::Dimension::kData));
  }

  std::printf(
      "\nThe storm job is rate-limited on the METADATA dimension (its\n"
      "admitted open/stat rate converges to the 2,000 ops/s MDS budget\n"
      "x PSFA headroom) while the streaming job's data dimension stays\n"
      "effectively unthrottled — per-dimension QoS, not blanket caps.\n");
  return 0;
}
