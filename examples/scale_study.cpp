// Scenario: reproduce the paper's scalability study on your laptop.
//
// Runs the calibrated Frontera model for any topology you ask for:
//
//   $ ./scale_study --stages=2500                 # flat, Fig. 4 point
//   $ ./scale_study --stages=10000 --aggregators=4  # hierarchical, Fig. 5
//   $ ./scale_study --stages=10000 --aggregators=20 --seconds=30
//
// Prints the paper-style report: cycle latency with phase breakdown plus
// the Tables II-IV resource columns.
#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"

using namespace sds;

int main(int argc, char** argv) {
  Config config;
  config.apply_args(argc, argv);

  sim::ExperimentConfig experiment;
  experiment.num_stages =
      static_cast<std::size_t>(config.get_int_or("stages", 2500));
  experiment.num_aggregators =
      static_cast<std::size_t>(config.get_int_or("aggregators", 0));
  experiment.stages_per_job =
      static_cast<std::size_t>(config.get_int_or("stages-per-job", 50));
  experiment.duration = seconds(config.get_int_or("seconds", 10));
  experiment.seed = static_cast<std::uint64_t>(config.get_int_or("seed", 42));
  experiment.preaggregate = config.get_bool_or("preaggregate", true);
  experiment.parallel_fanout = config.get_bool_or("parallel-fanout", true);
  experiment.local_decisions = config.get_bool_or("local-decisions", false);

  std::printf("sdscale scale study: %zu stages, %zu aggregators (%s)\n",
              experiment.num_stages, experiment.num_aggregators,
              experiment.num_aggregators == 0 ? "flat design"
                                              : "hierarchical design");

  auto result = sim::run_experiment(experiment);
  if (!result.is_ok()) {
    std::fprintf(stderr, "experiment rejected: %s\n",
                 result.status().to_string().c_str());
    std::fprintf(stderr,
                 "hint: the flat design cannot exceed the per-node "
                 "connection cap (2,500); add --aggregators=N.\n");
    return 1;
  }

  std::printf("\ncontrol cycles completed: %llu over %.1f simulated s\n",
              static_cast<unsigned long long>(result->cycles),
              to_seconds(result->elapsed));
  std::printf("average cycle latency:    %.2f ms\n",
              result->stats.mean_total_ms());
  std::printf("  collect: %8.2f ms\n", result->stats.mean_collect_ms());
  std::printf("  compute: %8.2f ms\n", result->stats.mean_compute_ms());
  std::printf("  enforce: %8.2f ms\n", result->stats.mean_enforce_ms());
  std::printf("  p99:     %8.2f ms\n",
              static_cast<double>(result->stats.total().percentile(0.99)) * 1e-6);

  std::printf("\nglobal controller: cpu=%.2f%% mem=%.2fGB tx=%.2fMB/s rx=%.2fMB/s\n",
              result->global.cpu_percent, result->global.memory_gb,
              result->global.transmitted_mbps, result->global.received_mbps);
  if (experiment.num_aggregators > 0) {
    std::printf("per aggregator:    cpu=%.2f%% mem=%.2fGB tx=%.2fMB/s rx=%.2fMB/s\n",
                result->aggregator.cpu_percent, result->aggregator.memory_gb,
                result->aggregator.transmitted_mbps,
                result->aggregator.received_mbps);
  }
  std::printf("\n(events executed: %llu; deterministic for a fixed --seed)\n",
              static_cast<unsigned long long>(result->events_executed));
  return 0;
}
