// Scenario: control-plane dependability (paper §VI). A hierarchical
// deployment loses an aggregator mid-run; its stages fail over to the
// surviving aggregator, re-register, and QoS enforcement continues —
// while the data plane keeps enforcing the last rules during the gap.
//
// The kill sequence is expressed as a FaultPlan (the same text format
// `--fault-plan=FILE` accepts in the benches) and replayed by a
// FaultDriver, instead of ad-hoc shutdown calls.
#include <cstdio>
#include <thread>

#include "fault/plan.h"
#include "runtime/deployment.h"
#include "runtime/fault_driver.h"

using namespace sds;
using namespace sds::runtime;

int main() {
  transport::InProcNetwork network;
  DeploymentOptions options;
  options.num_stages = 8;
  options.num_aggregators = 2;
  options.stages_per_host = 4;
  options.stages_per_job = 4;
  options.budgets = {4000.0, 400.0};

  auto deployment = Deployment::create(network, options);
  if (!deployment.is_ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 deployment.status().to_string().c_str());
    return 1;
  }
  auto& cluster = **deployment;

  (void)cluster.global().run_cycles(2);
  std::printf("steady state: %zu stages via %zu aggregators\n",
              cluster.global().registered_stages(),
              cluster.global().known_aggregators());
  const double before =
      cluster.stage_limit(StageId{0}, stage::Dimension::kData).value();
  std::printf("stage 0 enforced limit: %.1f ops/s\n\n", before);

  std::printf(">>> killing aggregator 0 (manages stages 0-3)\n");
  // for_ms 0 = the aggregator never comes back.
  const auto plan =
      fault::FaultPlan::parse("crash aggregator 0 at_ms 1 for_ms 0\n");
  if (!plan.is_ok()) {
    std::fprintf(stderr, "bad fault plan: %s\n",
                 plan.status().to_string().c_str());
    return 1;
  }
  FaultDriver chaos(cluster, *plan);
  if (const Status applied = chaos.advance_to(millis(1)); !applied.is_ok()) {
    std::fprintf(stderr, "fault injection failed: %s\n",
                 applied.to_string().c_str());
    return 1;
  }

  // The stages' hosts notice the dropped connections and re-register via
  // their next configured controller (aggregator 1).
  const Nanos deadline = SystemClock::instance().now() + seconds(5);
  while ((cluster.global().registered_stages() < options.num_stages ||
          cluster.global().known_aggregators() != 1) &&
         SystemClock::instance().now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("recovered: %zu stages via %zu aggregator(s)\n",
              cluster.global().registered_stages(),
              cluster.global().known_aggregators());
  std::printf("stage 0 still enforcing its last rule: %.1f ops/s\n",
              cluster.stage_limit(StageId{0}, stage::Dimension::kData).value());

  // Epoch bump marks the recovery; any rule still in flight from before
  // the failure is now stale and will be rejected by the stages.
  cluster.global().advance_epoch();
  auto cycle = cluster.global().run_cycle();
  if (!cycle.is_ok()) {
    std::fprintf(stderr, "post-failover cycle failed: %s\n",
                 cycle.status().to_string().c_str());
    return 1;
  }
  std::printf("\npost-failover control cycle OK (%.3f ms); QoS restored:\n",
              to_millis(cycle->total()));
  double total = 0;
  for (std::uint32_t i = 0; i < options.num_stages; ++i) {
    total += cluster.stage_limit(StageId{i}, stage::Dimension::kData).value();
  }
  std::printf("sum of enforced limits: %.1f ops/s (budget 4000)\n", total);
  return 0;
}
