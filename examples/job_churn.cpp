// Scenario: a dynamic HPC system — jobs continuously enter and leave
// (Poisson arrivals, exponential lifetimes), each bringing I/O demand.
// Shows PSFA re-allocating the PFS budget as the active set changes, on
// the 10,000-node simulated cluster. This is the "highly dynamic"
// environment the paper argues static tools like OOOPS cannot handle.
#include <cstdio>

#include "sim/experiment.h"
#include "workload/generators.h"

using namespace sds;

int main() {
  // One churn schedule shared by all stages: stage i follows episode
  // i mod |episodes|, so the number of active stages tracks the number
  // of live jobs over time.
  workload::JobChurnOptions churn;
  churn.mean_interarrival = millis(600);
  churn.mean_lifetime = seconds(3);
  churn.active_rate = 1200.0;
  churn.horizon = seconds(30);
  const auto schedule =
      std::make_shared<workload::JobChurnSchedule>(churn, /*seed=*/2024);

  sim::ExperimentConfig config;
  config.num_stages = 2000;
  config.num_aggregators = 4;
  config.stages_per_job = 50;
  config.duration = seconds(12);
  config.budgets = {500'000.0, 50'000.0};
  config.demand_factory = [schedule](StageId stage, stage::Dimension dim) {
    const auto base = schedule->demand_for(stage.value());
    if (dim == stage::Dimension::kData) return base;
    return stage::DemandFn(
        [base](Nanos t) { return base(t) / 10.0; });  // 10:1 data:meta
  };

  auto result = sim::run_experiment(config);
  if (!result.is_ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  std::printf("job churn on a %zu-stage hierarchical cluster (%zu aggs)\n",
              config.num_stages, config.num_aggregators);
  std::printf("episodes generated: %zu\n", schedule->episodes().size());
  std::printf("active episodes over time:");
  for (int s = 0; s <= 12; s += 2) {
    std::printf("  t=%ds:%zu", s, schedule->active_at(seconds(s)));
  }
  std::printf("\n\ncontrol plane under churn:\n");
  std::printf("  cycles: %llu, mean latency %.2f ms "
              "(collect %.2f / compute %.2f / enforce %.2f)\n",
              static_cast<unsigned long long>(result->cycles),
              result->stats.mean_total_ms(), result->stats.mean_collect_ms(),
              result->stats.mean_compute_ms(), result->stats.mean_enforce_ms());
  std::printf("  final enforced data-IOPS sum: %.0f (budget %.0f)\n",
              result->final_data_limit_sum, config.budgets.data_iops);
  std::printf(
      "\nEvery cycle the controller re-runs PSFA over whatever jobs are\n"
      "currently active; departed jobs stop receiving budget within one\n"
      "cycle (~%.0f ms) — the dynamic coordination static per-node tools\n"
      "cannot provide.\n",
      result->stats.mean_total_ms());
  return 0;
}
