// Quickstart: bring up a complete live SDS control plane in one process
// (global controller + stage hosts over the in-process transport), run a
// few control cycles, and watch PSFA enforce the PFS budget.
//
//   $ ./quickstart
//
// What it shows:
//   1. Deployment::create wires controller + stages and registers them.
//   2. run_cycle() executes collect -> compute (PSFA) -> enforce.
//   3. Stage rate limits converge to a fair, budget-respecting split.
#include <cstdio>

#include "runtime/deployment.h"
#include "workload/generators.h"

using namespace sds;
using namespace sds::runtime;

int main() {
  // A deliberately contended setup: 8 stages, each wanting 1,000 data
  // ops/s (8,000 total) against a PFS budget of 4,000 ops/s.
  transport::InProcNetwork network;
  DeploymentOptions options;
  options.num_stages = 8;
  options.stages_per_job = 4;  // stages 0-3 -> job 0, stages 4-7 -> job 1
  options.budgets = {4000.0, 400.0};
  options.data_demand = 1000.0;
  options.meta_demand = 100.0;

  auto deployment = Deployment::create(network, options);
  if (!deployment.is_ok()) {
    std::fprintf(stderr, "deployment failed: %s\n",
                 deployment.status().to_string().c_str());
    return 1;
  }
  auto& cluster = **deployment;
  std::printf("deployed: %zu stages registered at the global controller\n",
              cluster.global().registered_stages());

  for (int cycle = 1; cycle <= 3; ++cycle) {
    auto breakdown = cluster.global().run_cycle();
    if (!breakdown.is_ok()) {
      std::fprintf(stderr, "cycle failed: %s\n",
                   breakdown.status().to_string().c_str());
      return 1;
    }
    std::printf("cycle %d: collect=%.3fms compute=%.3fms enforce=%.3fms\n",
                cycle, to_millis(breakdown->collect),
                to_millis(breakdown->compute), to_millis(breakdown->enforce));
  }

  std::printf("\nenforced data-IOPS limits after 3 cycles:\n");
  double total = 0;
  for (std::uint32_t i = 0; i < options.num_stages; ++i) {
    const double limit =
        cluster.stage_limit(StageId{i}, stage::Dimension::kData).value();
    total += limit;
    std::printf("  stage %u (job %u): %7.1f ops/s\n", i, i / 4, limit);
  }
  std::printf("  total: %.1f ops/s (budget 4000, never exceeded)\n", total);

  // Give job 0 a 3x QoS weight and watch the split shift.
  cluster.global().set_job_weight(JobId{0}, 3.0);
  (void)cluster.global().run_cycles(3);
  std::printf("\nafter weighting job 0 at 3x:\n");
  for (std::uint32_t i = 0; i < options.num_stages; ++i) {
    const double limit =
        cluster.stage_limit(StageId{i}, stage::Dimension::kData).value();
    std::printf("  stage %u (job %u): %7.1f ops/s\n", i, i / 4, limit);
  }
  return 0;
}
