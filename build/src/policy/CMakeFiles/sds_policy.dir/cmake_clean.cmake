file(REMOVE_RECURSE
  "CMakeFiles/sds_policy.dir/baselines.cc.o"
  "CMakeFiles/sds_policy.dir/baselines.cc.o.d"
  "CMakeFiles/sds_policy.dir/psfa.cc.o"
  "CMakeFiles/sds_policy.dir/psfa.cc.o.d"
  "CMakeFiles/sds_policy.dir/spec.cc.o"
  "CMakeFiles/sds_policy.dir/spec.cc.o.d"
  "CMakeFiles/sds_policy.dir/splitter.cc.o"
  "CMakeFiles/sds_policy.dir/splitter.cc.o.d"
  "libsds_policy.a"
  "libsds_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
