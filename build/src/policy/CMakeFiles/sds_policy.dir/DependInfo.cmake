
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/baselines.cc" "src/policy/CMakeFiles/sds_policy.dir/baselines.cc.o" "gcc" "src/policy/CMakeFiles/sds_policy.dir/baselines.cc.o.d"
  "/root/repo/src/policy/psfa.cc" "src/policy/CMakeFiles/sds_policy.dir/psfa.cc.o" "gcc" "src/policy/CMakeFiles/sds_policy.dir/psfa.cc.o.d"
  "/root/repo/src/policy/spec.cc" "src/policy/CMakeFiles/sds_policy.dir/spec.cc.o" "gcc" "src/policy/CMakeFiles/sds_policy.dir/spec.cc.o.d"
  "/root/repo/src/policy/splitter.cc" "src/policy/CMakeFiles/sds_policy.dir/splitter.cc.o" "gcc" "src/policy/CMakeFiles/sds_policy.dir/splitter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
