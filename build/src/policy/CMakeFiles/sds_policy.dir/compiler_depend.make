# Empty compiler generated dependencies file for sds_policy.
# This may be replaced when dependencies are built.
