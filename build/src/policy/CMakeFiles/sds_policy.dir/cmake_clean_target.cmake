file(REMOVE_RECURSE
  "libsds_policy.a"
)
