file(REMOVE_RECURSE
  "CMakeFiles/sds_workload.dir/generators.cc.o"
  "CMakeFiles/sds_workload.dir/generators.cc.o.d"
  "CMakeFiles/sds_workload.dir/trace.cc.o"
  "CMakeFiles/sds_workload.dir/trace.cc.o.d"
  "libsds_workload.a"
  "libsds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
