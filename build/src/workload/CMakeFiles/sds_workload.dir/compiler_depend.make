# Empty compiler generated dependencies file for sds_workload.
# This may be replaced when dependencies are built.
