file(REMOVE_RECURSE
  "libsds_workload.a"
)
