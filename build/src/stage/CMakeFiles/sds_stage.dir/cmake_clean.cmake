file(REMOVE_RECURSE
  "CMakeFiles/sds_stage.dir/limiter.cc.o"
  "CMakeFiles/sds_stage.dir/limiter.cc.o.d"
  "libsds_stage.a"
  "libsds_stage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_stage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
