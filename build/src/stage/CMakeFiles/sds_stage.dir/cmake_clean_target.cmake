file(REMOVE_RECURSE
  "libsds_stage.a"
)
