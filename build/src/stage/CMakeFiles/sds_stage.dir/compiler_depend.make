# Empty compiler generated dependencies file for sds_stage.
# This may be replaced when dependencies are built.
