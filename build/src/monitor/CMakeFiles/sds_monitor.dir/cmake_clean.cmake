file(REMOVE_RECURSE
  "CMakeFiles/sds_monitor.dir/resource_monitor.cc.o"
  "CMakeFiles/sds_monitor.dir/resource_monitor.cc.o.d"
  "libsds_monitor.a"
  "libsds_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
