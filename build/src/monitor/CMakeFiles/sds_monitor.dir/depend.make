# Empty dependencies file for sds_monitor.
# This may be replaced when dependencies are built.
