file(REMOVE_RECURSE
  "libsds_monitor.a"
)
