# Empty compiler generated dependencies file for sds_proto.
# This may be replaced when dependencies are built.
