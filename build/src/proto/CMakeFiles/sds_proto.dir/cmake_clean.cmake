file(REMOVE_RECURSE
  "CMakeFiles/sds_proto.dir/messages.cc.o"
  "CMakeFiles/sds_proto.dir/messages.cc.o.d"
  "libsds_proto.a"
  "libsds_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
