file(REMOVE_RECURSE
  "libsds_proto.a"
)
