file(REMOVE_RECURSE
  "libsds_common.a"
)
