file(REMOVE_RECURSE
  "CMakeFiles/sds_common.dir/config.cc.o"
  "CMakeFiles/sds_common.dir/config.cc.o.d"
  "CMakeFiles/sds_common.dir/histogram.cc.o"
  "CMakeFiles/sds_common.dir/histogram.cc.o.d"
  "CMakeFiles/sds_common.dir/log.cc.o"
  "CMakeFiles/sds_common.dir/log.cc.o.d"
  "CMakeFiles/sds_common.dir/thread_pool.cc.o"
  "CMakeFiles/sds_common.dir/thread_pool.cc.o.d"
  "libsds_common.a"
  "libsds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
