file(REMOVE_RECURSE
  "libsds_transport.a"
)
