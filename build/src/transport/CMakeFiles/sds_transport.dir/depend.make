# Empty dependencies file for sds_transport.
# This may be replaced when dependencies are built.
