file(REMOVE_RECURSE
  "CMakeFiles/sds_transport.dir/inproc.cc.o"
  "CMakeFiles/sds_transport.dir/inproc.cc.o.d"
  "CMakeFiles/sds_transport.dir/tcp.cc.o"
  "CMakeFiles/sds_transport.dir/tcp.cc.o.d"
  "libsds_transport.a"
  "libsds_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
