file(REMOVE_RECURSE
  "libsds_rpc.a"
)
