file(REMOVE_RECURSE
  "CMakeFiles/sds_rpc.dir/gather.cc.o"
  "CMakeFiles/sds_rpc.dir/gather.cc.o.d"
  "libsds_rpc.a"
  "libsds_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
