# Empty compiler generated dependencies file for sds_rpc.
# This may be replaced when dependencies are built.
