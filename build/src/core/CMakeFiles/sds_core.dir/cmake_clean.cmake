file(REMOVE_RECURSE
  "CMakeFiles/sds_core.dir/aggregator.cc.o"
  "CMakeFiles/sds_core.dir/aggregator.cc.o.d"
  "CMakeFiles/sds_core.dir/coordinated.cc.o"
  "CMakeFiles/sds_core.dir/coordinated.cc.o.d"
  "CMakeFiles/sds_core.dir/global.cc.o"
  "CMakeFiles/sds_core.dir/global.cc.o.d"
  "CMakeFiles/sds_core.dir/registry.cc.o"
  "CMakeFiles/sds_core.dir/registry.cc.o.d"
  "libsds_core.a"
  "libsds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
