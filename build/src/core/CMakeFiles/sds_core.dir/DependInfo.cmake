
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregator.cc" "src/core/CMakeFiles/sds_core.dir/aggregator.cc.o" "gcc" "src/core/CMakeFiles/sds_core.dir/aggregator.cc.o.d"
  "/root/repo/src/core/coordinated.cc" "src/core/CMakeFiles/sds_core.dir/coordinated.cc.o" "gcc" "src/core/CMakeFiles/sds_core.dir/coordinated.cc.o.d"
  "/root/repo/src/core/global.cc" "src/core/CMakeFiles/sds_core.dir/global.cc.o" "gcc" "src/core/CMakeFiles/sds_core.dir/global.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/core/CMakeFiles/sds_core.dir/registry.cc.o" "gcc" "src/core/CMakeFiles/sds_core.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/policy/CMakeFiles/sds_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/sds_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
