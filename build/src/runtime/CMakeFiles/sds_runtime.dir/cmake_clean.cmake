file(REMOVE_RECURSE
  "CMakeFiles/sds_runtime.dir/aggregator_server.cc.o"
  "CMakeFiles/sds_runtime.dir/aggregator_server.cc.o.d"
  "CMakeFiles/sds_runtime.dir/deployment.cc.o"
  "CMakeFiles/sds_runtime.dir/deployment.cc.o.d"
  "CMakeFiles/sds_runtime.dir/global_server.cc.o"
  "CMakeFiles/sds_runtime.dir/global_server.cc.o.d"
  "CMakeFiles/sds_runtime.dir/stage_host.cc.o"
  "CMakeFiles/sds_runtime.dir/stage_host.cc.o.d"
  "libsds_runtime.a"
  "libsds_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
