# Empty dependencies file for sds_sim.
# This may be replaced when dependencies are built.
