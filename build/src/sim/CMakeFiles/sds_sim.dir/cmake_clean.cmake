file(REMOVE_RECURSE
  "CMakeFiles/sds_sim.dir/experiment.cc.o"
  "CMakeFiles/sds_sim.dir/experiment.cc.o.d"
  "libsds_sim.a"
  "libsds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
