file(REMOVE_RECURSE
  "CMakeFiles/ablation_hierarchy_depth.dir/ablation_hierarchy_depth.cc.o"
  "CMakeFiles/ablation_hierarchy_depth.dir/ablation_hierarchy_depth.cc.o.d"
  "ablation_hierarchy_depth"
  "ablation_hierarchy_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hierarchy_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
