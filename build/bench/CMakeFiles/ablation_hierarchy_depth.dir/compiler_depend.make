# Empty compiler generated dependencies file for ablation_hierarchy_depth.
# This may be replaced when dependencies are built.
