# Empty compiler generated dependencies file for ablation_local_decisions.
# This may be replaced when dependencies are built.
