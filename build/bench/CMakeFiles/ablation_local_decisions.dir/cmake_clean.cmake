file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_decisions.dir/ablation_local_decisions.cc.o"
  "CMakeFiles/ablation_local_decisions.dir/ablation_local_decisions.cc.o.d"
  "ablation_local_decisions"
  "ablation_local_decisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_decisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
