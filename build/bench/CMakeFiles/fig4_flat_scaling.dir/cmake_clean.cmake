file(REMOVE_RECURSE
  "CMakeFiles/fig4_flat_scaling.dir/fig4_flat_scaling.cc.o"
  "CMakeFiles/fig4_flat_scaling.dir/fig4_flat_scaling.cc.o.d"
  "fig4_flat_scaling"
  "fig4_flat_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_flat_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
