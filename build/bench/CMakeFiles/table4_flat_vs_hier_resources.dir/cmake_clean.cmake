file(REMOVE_RECURSE
  "CMakeFiles/table4_flat_vs_hier_resources.dir/table4_flat_vs_hier_resources.cc.o"
  "CMakeFiles/table4_flat_vs_hier_resources.dir/table4_flat_vs_hier_resources.cc.o.d"
  "table4_flat_vs_hier_resources"
  "table4_flat_vs_hier_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_flat_vs_hier_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
