# Empty compiler generated dependencies file for table4_flat_vs_hier_resources.
# This may be replaced when dependencies are built.
