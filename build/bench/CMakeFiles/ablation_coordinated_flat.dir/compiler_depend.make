# Empty compiler generated dependencies file for ablation_coordinated_flat.
# This may be replaced when dependencies are built.
