file(REMOVE_RECURSE
  "CMakeFiles/ablation_coordinated_flat.dir/ablation_coordinated_flat.cc.o"
  "CMakeFiles/ablation_coordinated_flat.dir/ablation_coordinated_flat.cc.o.d"
  "ablation_coordinated_flat"
  "ablation_coordinated_flat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coordinated_flat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
