file(REMOVE_RECURSE
  "CMakeFiles/projection_top500.dir/projection_top500.cc.o"
  "CMakeFiles/projection_top500.dir/projection_top500.cc.o.d"
  "projection_top500"
  "projection_top500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_top500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
