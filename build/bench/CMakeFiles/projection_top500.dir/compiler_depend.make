# Empty compiler generated dependencies file for projection_top500.
# This may be replaced when dependencies are built.
