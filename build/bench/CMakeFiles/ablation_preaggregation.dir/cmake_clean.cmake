file(REMOVE_RECURSE
  "CMakeFiles/ablation_preaggregation.dir/ablation_preaggregation.cc.o"
  "CMakeFiles/ablation_preaggregation.dir/ablation_preaggregation.cc.o.d"
  "ablation_preaggregation"
  "ablation_preaggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preaggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
