# Empty compiler generated dependencies file for ablation_preaggregation.
# This may be replaced when dependencies are built.
