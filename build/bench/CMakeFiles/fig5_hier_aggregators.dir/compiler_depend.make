# Empty compiler generated dependencies file for fig5_hier_aggregators.
# This may be replaced when dependencies are built.
