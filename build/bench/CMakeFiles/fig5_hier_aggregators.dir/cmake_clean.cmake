file(REMOVE_RECURSE
  "CMakeFiles/fig5_hier_aggregators.dir/fig5_hier_aggregators.cc.o"
  "CMakeFiles/fig5_hier_aggregators.dir/fig5_hier_aggregators.cc.o.d"
  "fig5_hier_aggregators"
  "fig5_hier_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_hier_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
