file(REMOVE_RECURSE
  "CMakeFiles/table3_hier_resources.dir/table3_hier_resources.cc.o"
  "CMakeFiles/table3_hier_resources.dir/table3_hier_resources.cc.o.d"
  "table3_hier_resources"
  "table3_hier_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_hier_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
