# Empty compiler generated dependencies file for ablation_connection_cap.
# This may be replaced when dependencies are built.
