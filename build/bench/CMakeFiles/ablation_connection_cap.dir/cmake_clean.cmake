file(REMOVE_RECURSE
  "CMakeFiles/ablation_connection_cap.dir/ablation_connection_cap.cc.o"
  "CMakeFiles/ablation_connection_cap.dir/ablation_connection_cap.cc.o.d"
  "ablation_connection_cap"
  "ablation_connection_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_connection_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
