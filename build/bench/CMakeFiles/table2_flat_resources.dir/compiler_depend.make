# Empty compiler generated dependencies file for table2_flat_resources.
# This may be replaced when dependencies are built.
