file(REMOVE_RECURSE
  "CMakeFiles/ablation_control_period.dir/ablation_control_period.cc.o"
  "CMakeFiles/ablation_control_period.dir/ablation_control_period.cc.o.d"
  "ablation_control_period"
  "ablation_control_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
