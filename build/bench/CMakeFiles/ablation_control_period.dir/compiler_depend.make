# Empty compiler generated dependencies file for ablation_control_period.
# This may be replaced when dependencies are built.
