# Empty dependencies file for table1_top500.
# This may be replaced when dependencies are built.
