file(REMOVE_RECURSE
  "CMakeFiles/table1_top500.dir/table1_top500.cc.o"
  "CMakeFiles/table1_top500.dir/table1_top500.cc.o.d"
  "table1_top500"
  "table1_top500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_top500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
