# Empty dependencies file for fig6_flat_vs_hier.
# This may be replaced when dependencies are built.
