file(REMOVE_RECURSE
  "CMakeFiles/fig6_flat_vs_hier.dir/fig6_flat_vs_hier.cc.o"
  "CMakeFiles/fig6_flat_vs_hier.dir/fig6_flat_vs_hier.cc.o.d"
  "fig6_flat_vs_hier"
  "fig6_flat_vs_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_flat_vs_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
