file(REMOVE_RECURSE
  "CMakeFiles/sds_staged.dir/sds_staged.cc.o"
  "CMakeFiles/sds_staged.dir/sds_staged.cc.o.d"
  "sds_staged"
  "sds_staged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_staged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
