
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/apps/sds_staged.cc" "apps/CMakeFiles/sds_staged.dir/sds_staged.cc.o" "gcc" "apps/CMakeFiles/sds_staged.dir/sds_staged.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/sds_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/sds_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/sds_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/sds_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/stage/CMakeFiles/sds_stage.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/sds_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/sds_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
