# Empty compiler generated dependencies file for sds_staged.
# This may be replaced when dependencies are built.
