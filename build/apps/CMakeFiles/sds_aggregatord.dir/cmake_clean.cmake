file(REMOVE_RECURSE
  "CMakeFiles/sds_aggregatord.dir/sds_aggregatord.cc.o"
  "CMakeFiles/sds_aggregatord.dir/sds_aggregatord.cc.o.d"
  "sds_aggregatord"
  "sds_aggregatord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_aggregatord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
