# Empty dependencies file for sds_aggregatord.
# This may be replaced when dependencies are built.
