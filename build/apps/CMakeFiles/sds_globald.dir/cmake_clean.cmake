file(REMOVE_RECURSE
  "CMakeFiles/sds_globald.dir/sds_globald.cc.o"
  "CMakeFiles/sds_globald.dir/sds_globald.cc.o.d"
  "sds_globald"
  "sds_globald.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sds_globald.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
