# Empty compiler generated dependencies file for sds_globald.
# This may be replaced when dependencies are built.
