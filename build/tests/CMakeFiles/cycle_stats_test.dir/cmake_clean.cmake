file(REMOVE_RECURSE
  "CMakeFiles/cycle_stats_test.dir/core/cycle_stats_test.cc.o"
  "CMakeFiles/cycle_stats_test.dir/core/cycle_stats_test.cc.o.d"
  "cycle_stats_test"
  "cycle_stats_test.pdb"
  "cycle_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cycle_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
