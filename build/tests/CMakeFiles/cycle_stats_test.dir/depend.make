# Empty dependencies file for cycle_stats_test.
# This may be replaced when dependencies are built.
