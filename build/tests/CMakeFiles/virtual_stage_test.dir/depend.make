# Empty dependencies file for virtual_stage_test.
# This may be replaced when dependencies are built.
