file(REMOVE_RECURSE
  "CMakeFiles/virtual_stage_test.dir/stage/virtual_stage_test.cc.o"
  "CMakeFiles/virtual_stage_test.dir/stage/virtual_stage_test.cc.o.d"
  "virtual_stage_test"
  "virtual_stage_test.pdb"
  "virtual_stage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_stage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
