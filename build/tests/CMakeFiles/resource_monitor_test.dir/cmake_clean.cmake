file(REMOVE_RECURSE
  "CMakeFiles/resource_monitor_test.dir/monitor/resource_monitor_test.cc.o"
  "CMakeFiles/resource_monitor_test.dir/monitor/resource_monitor_test.cc.o.d"
  "resource_monitor_test"
  "resource_monitor_test.pdb"
  "resource_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
