# Empty compiler generated dependencies file for psfa_test.
# This may be replaced when dependencies are built.
