file(REMOVE_RECURSE
  "CMakeFiles/psfa_test.dir/policy/psfa_test.cc.o"
  "CMakeFiles/psfa_test.dir/policy/psfa_test.cc.o.d"
  "psfa_test"
  "psfa_test.pdb"
  "psfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
