# Empty dependencies file for global_core_test.
# This may be replaced when dependencies are built.
