file(REMOVE_RECURSE
  "CMakeFiles/global_core_test.dir/core/global_core_test.cc.o"
  "CMakeFiles/global_core_test.dir/core/global_core_test.cc.o.d"
  "global_core_test"
  "global_core_test.pdb"
  "global_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
