# Empty compiler generated dependencies file for aggregator_core_test.
# This may be replaced when dependencies are built.
