file(REMOVE_RECURSE
  "CMakeFiles/aggregator_core_test.dir/core/aggregator_core_test.cc.o"
  "CMakeFiles/aggregator_core_test.dir/core/aggregator_core_test.cc.o.d"
  "aggregator_core_test"
  "aggregator_core_test.pdb"
  "aggregator_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregator_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
