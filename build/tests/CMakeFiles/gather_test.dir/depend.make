# Empty dependencies file for gather_test.
# This may be replaced when dependencies are built.
