file(REMOVE_RECURSE
  "CMakeFiles/gather_test.dir/rpc/gather_test.cc.o"
  "CMakeFiles/gather_test.dir/rpc/gather_test.cc.o.d"
  "gather_test"
  "gather_test.pdb"
  "gather_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gather_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
