# Empty dependencies file for posix_stage_test.
# This may be replaced when dependencies are built.
