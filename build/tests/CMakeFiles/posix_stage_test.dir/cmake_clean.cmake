file(REMOVE_RECURSE
  "CMakeFiles/posix_stage_test.dir/stage/posix_stage_test.cc.o"
  "CMakeFiles/posix_stage_test.dir/stage/posix_stage_test.cc.o.d"
  "posix_stage_test"
  "posix_stage_test.pdb"
  "posix_stage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_stage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
