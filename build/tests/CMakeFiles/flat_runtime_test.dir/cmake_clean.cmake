file(REMOVE_RECURSE
  "CMakeFiles/flat_runtime_test.dir/runtime/flat_runtime_test.cc.o"
  "CMakeFiles/flat_runtime_test.dir/runtime/flat_runtime_test.cc.o.d"
  "flat_runtime_test"
  "flat_runtime_test.pdb"
  "flat_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flat_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
