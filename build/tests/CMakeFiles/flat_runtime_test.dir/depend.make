# Empty dependencies file for flat_runtime_test.
# This may be replaced when dependencies are built.
