file(REMOVE_RECURSE
  "CMakeFiles/limiter_test.dir/stage/limiter_test.cc.o"
  "CMakeFiles/limiter_test.dir/stage/limiter_test.cc.o.d"
  "limiter_test"
  "limiter_test.pdb"
  "limiter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limiter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
