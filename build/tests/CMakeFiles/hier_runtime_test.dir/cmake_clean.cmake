file(REMOVE_RECURSE
  "CMakeFiles/hier_runtime_test.dir/runtime/hier_runtime_test.cc.o"
  "CMakeFiles/hier_runtime_test.dir/runtime/hier_runtime_test.cc.o.d"
  "hier_runtime_test"
  "hier_runtime_test.pdb"
  "hier_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hier_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
