# Empty dependencies file for hier_runtime_test.
# This may be replaced when dependencies are built.
