# Empty dependencies file for stage_host_test.
# This may be replaced when dependencies are built.
