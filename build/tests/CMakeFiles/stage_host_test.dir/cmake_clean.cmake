file(REMOVE_RECURSE
  "CMakeFiles/stage_host_test.dir/runtime/stage_host_test.cc.o"
  "CMakeFiles/stage_host_test.dir/runtime/stage_host_test.cc.o.d"
  "stage_host_test"
  "stage_host_test.pdb"
  "stage_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
