# Empty dependencies file for coordinated_test.
# This may be replaced when dependencies are built.
