file(REMOVE_RECURSE
  "CMakeFiles/coordinated_test.dir/core/coordinated_test.cc.o"
  "CMakeFiles/coordinated_test.dir/core/coordinated_test.cc.o.d"
  "coordinated_test"
  "coordinated_test.pdb"
  "coordinated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
