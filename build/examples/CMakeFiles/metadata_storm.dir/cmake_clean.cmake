file(REMOVE_RECURSE
  "CMakeFiles/metadata_storm.dir/metadata_storm.cpp.o"
  "CMakeFiles/metadata_storm.dir/metadata_storm.cpp.o.d"
  "metadata_storm"
  "metadata_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metadata_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
