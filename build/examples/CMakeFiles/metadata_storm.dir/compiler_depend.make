# Empty compiler generated dependencies file for metadata_storm.
# This may be replaced when dependencies are built.
