file(REMOVE_RECURSE
  "CMakeFiles/job_churn.dir/job_churn.cpp.o"
  "CMakeFiles/job_churn.dir/job_churn.cpp.o.d"
  "job_churn"
  "job_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
