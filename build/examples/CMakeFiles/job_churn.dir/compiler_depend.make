# Empty compiler generated dependencies file for job_churn.
# This may be replaced when dependencies are built.
