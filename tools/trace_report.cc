// trace_report — offline per-phase attribution for exported traces.
//
// Usage:
//   trace_report <component>.trace.json     Chrome-tracing document →
//                                           per-phase breakdown + the
//                                           slowest cycle's critical path
//   trace_report <component>.metrics.jsonl  metrics JSONL → one line per
//                                           sds_cycle_* histogram family
//
// Both input flavours are produced by the telemetry reporter
// (`telemetry.out_dir`); the Chrome document also comes out of
// to_chrome_trace_json() in tests and the sim drivers.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/trace_report.h"

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: trace_report <trace.json | metrics.jsonl>\n");
    return 2;
  }
  const std::string path = argv[1];
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_report: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();

  if (ends_with(path, ".jsonl")) {
    std::fputs(sds::telemetry::summarize_metrics_jsonl(contents).c_str(),
               stdout);
    return 0;
  }

  const auto trace = sds::telemetry::parse_chrome_trace(contents);
  if (!trace.is_ok()) {
    std::fprintf(stderr, "trace_report: %s: %s\n", path.c_str(),
                 trace.status().to_string().c_str());
    return 1;
  }
  const auto report = sds::telemetry::build_report(trace.value());
  std::fputs(sds::telemetry::format_report(report).c_str(), stdout);
  return 0;
}
