// sdslint — determinism and hot-path lint for the sdscale tree.
//
// The simulator's claim to validity is bit-identical replay: the same
// config must produce the same Tables/Figures on every run and every
// machine. That dies the moment wall-clock time, ambient randomness, or
// host-dependent iteration order leaks into src/sim. This linter makes
// those mistakes build failures instead of review comments.
//
// Rules (applicability inferred from path components):
//   sim-wallclock   [sim]        no system_clock/steady_clock/time()/
//                                gettimeofday/... — sim time comes from
//                                the engine clock only.
//   sim-rand        [sim]        no rand()/srand()/random_device — all
//                                randomness must be seeded PRNGs owned
//                                by the experiment config.
//   sim-sleep       [sim]        no sleep_for/sleep_until/usleep/... —
//                                simulated time advances via the engine.
//   sim-thread      [sim]        no std::thread/jthread/async/
//                                pthread_create outside a
//                                `// sdslint: lane-runner` region — the
//                                only sanctioned thread-spawn site in
//                                the simulator is the lane runner's
//                                worker team (sim/parallel.cc); events
//                                themselves stay single-threaded.
//   unordered-iter  [sim,bench]  no iteration over unordered containers
//                                (range-for or .begin()) — hash order is
//                                implementation-defined and would leak
//                                into emitted rows.
//   hotpath-alloc   [all]        inside `// sdslint: hotpath` regions:
//                                no heap `new` (placement new is fine),
//                                make_unique/make_shared, malloc-family
//                                calls, std::function construction,
//                                heap-string formatting (to_string,
//                                stringstreams), or by-value owning-
//                                container declarations (references,
//                                pointers, and reuse of buffers sized
//                                outside the region are the sanctioned
//                                idiom — see core/metrics_store.cc).
//
// Directives (in comments):
//   // sdslint: hotpath          begin a hot-path region
//   // sdslint: end-hotpath      end it (hotpath-begin / hotpath-end are
//                                accepted aliases)
//   // sdslint: lane-runner      begin a lane-runner region (sim-thread
//                                suspended; all other rules still apply)
//   // sdslint: end-lane-runner  end it
//   // sdslint: allow(rule,...)  suppress on this line (or, when the
//                                comment stands alone, on the next line)
//
// Regions nest: each end marker closes the innermost open region of its
// kind. An end without a begin, or a region still open at end of file,
// is an `unbalanced-directive` error (not suppressible).
//
// This is a token/line-level checker, not a compiler plugin: it reads
// each file once, strips comments and string/char literals, and pattern
// matches word-boundary tokens. Multi-line `for` headers and raw-string
// literals spanning lines are outside its reach — by design it errs
// toward simplicity; anything it cannot see, review still can.
//
// Exit status: 0 when clean, 1 when any violation is reported, 2 on
// usage or I/O errors.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* scope;
  const char* summary;
};

constexpr RuleInfo kRules[] = {
    {"sim-wallclock", "src/sim", "wall-clock time source in simulation code"},
    {"sim-rand", "src/sim", "ambient randomness in simulation code"},
    {"sim-sleep", "src/sim", "real-time sleep in simulation code"},
    {"sim-thread", "src/sim",
     "thread spawn in simulation code outside a lane-runner region"},
    {"unordered-iter", "src/sim, bench",
     "iteration over an unordered container (hash order leaks into output)"},
    {"hotpath-alloc", "hotpath regions",
     "heap allocation, std::function, heap-string formatting, or by-value "
     "container declaration in a hot-path region"},
    {"fault-wallclock", "src/fault",
     "wall-clock time source in fault-plan code"},
    {"fault-rand", "src/fault", "unseeded randomness in fault-plan code"},
    {"span-wallclock", "src/sim, bench",
     "wall-clock read stamping a trace span (span times must come from "
     "the virtual clock)"},
    {"unbalanced-directive", "all",
     "region directive without a matching begin, or a region left open "
     "at end of file"},
};

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Split one physical line into code text and comment text, carrying
/// block-comment state across lines. String and char literals are
/// replaced by a single space in the code text so their contents can
/// never produce token matches (and adjacent tokens never merge).
void split_line(const std::string& line, bool& in_block_comment,
                std::string& code, std::string& comment) {
  code.clear();
  comment.clear();
  bool in_string = false;
  bool in_char = false;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (in_block_comment) {
      if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment = false;
        i += 2;
        continue;
      }
      comment.push_back(c);
      ++i;
      continue;
    }
    if (in_string || in_char) {
      if (c == '\\' && i + 1 < line.size()) {
        i += 2;
        continue;
      }
      if ((in_string && c == '"') || (in_char && c == '\'')) {
        in_string = in_char = false;
      }
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      comment.append(line, i + 2, std::string::npos);
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      i += 2;
      continue;
    }
    if (c == '"') {
      in_string = true;
      code.push_back(' ');
      ++i;
      continue;
    }
    if (c == '\'') {
      // Digit separators (1'000'000) are not character literals.
      if (!code.empty() && is_ident_char(code.back()) && i + 1 < line.size() &&
          std::isalnum(static_cast<unsigned char>(line[i + 1])) != 0) {
        ++i;
        continue;
      }
      in_char = true;
      code.push_back(' ');
      ++i;
      continue;
    }
    code.push_back(c);
    ++i;
  }
  // Unterminated string/char literals do not span lines in valid C++;
  // state intentionally resets with the line.
}

/// Find `word` at an identifier boundary. When `require_call` is set the
/// next non-space character must be '('. Returns npos when absent.
std::size_t find_word(const std::string& code, const char* word,
                      bool require_call = false) {
  const std::size_t len = std::strlen(word);
  std::size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const std::size_t end = pos + len;
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (left_ok && right_ok) {
      if (!require_call) return pos;
      std::size_t j = end;
      while (j < code.size() && code[j] == ' ') ++j;
      if (j < code.size() && code[j] == '(') return pos;
    }
    pos = end;
  }
  return std::string::npos;
}

/// Find `word` at an identifier boundary, immediately preceded by a
/// `std::` (or any `::`) qualifier.
bool has_qualified_word(const std::string& code, const char* word) {
  const std::size_t len = std::strlen(word);
  std::size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const std::size_t end = pos + len;
    const bool qualified = pos >= 2 && code[pos - 1] == ':' && code[pos - 2] == ':';
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (qualified && right_ok) return true;
    pos = end;
  }
  return false;
}

/// Record variable names declared with std::unordered_* types on this
/// line: after the template argument list closes, the next identifier is
/// taken as the declared name (skipping `&`, `*`, and spaces). Names
/// followed by '(' are function declarations and are ignored. Multi-line
/// declarations fall outside this heuristic.
void collect_unordered_names(const std::string& code,
                             std::set<std::string>& names) {
  std::size_t pos = 0;
  while ((pos = code.find("unordered_", pos)) != std::string::npos) {
    if (pos > 0 && is_ident_char(code[pos - 1])) {
      pos += 10;
      continue;
    }
    std::size_t i = pos;
    while (i < code.size() && is_ident_char(code[i])) ++i;
    if (i >= code.size() || code[i] != '<') {
      pos = i;
      continue;
    }
    int depth = 0;
    for (; i < code.size(); ++i) {
      if (code[i] == '<') ++depth;
      if (code[i] == '>' && --depth == 0) {
        ++i;
        break;
      }
    }
    if (depth != 0) return;  // declaration continues on the next line
    while (i < code.size() &&
           (code[i] == ' ' || code[i] == '&' || code[i] == '*')) {
      ++i;
    }
    std::string name;
    while (i < code.size() && is_ident_char(code[i])) name.push_back(code[i++]);
    while (i < code.size() && code[i] == ' ') ++i;
    if (!name.empty() && (i >= code.size() || code[i] != '(')) {
      names.insert(name);
    }
    pos = i;
  }
}

/// True when this line's code has a range-for whose range expression
/// mentions one of `names` (or an unordered type directly).
bool iterates_unordered(const std::string& code,
                        const std::set<std::string>& names) {
  std::size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    const std::size_t end = pos + 3;
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (!left_ok || !right_ok) {
      pos = end;
      continue;
    }
    const std::size_t open = code.find('(', end);
    if (open == std::string::npos) break;
    // Scan the parenthesized header for a ':' at depth 1 (not '::').
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      const char c = code[i];
      if (c == '(') ++depth;
      if (c == ')' && --depth == 0) {
        close = i;
        break;
      }
      if (c == ':' && depth == 1 && colon == std::string::npos) {
        const bool dbl = (i + 1 < code.size() && code[i + 1] == ':') ||
                         (i > 0 && code[i - 1] == ':');
        if (!dbl) colon = i;
      }
    }
    if (colon != std::string::npos) {
      const std::size_t range_end =
          close == std::string::npos ? code.size() : close;
      const std::string range = code.substr(colon + 1, range_end - colon - 1);
      if (range.find("unordered_") != std::string::npos) return true;
      std::string token;
      for (std::size_t i = 0; i <= range.size(); ++i) {
        if (i < range.size() && is_ident_char(range[i])) {
          token.push_back(range[i]);
        } else if (!token.empty()) {
          if (names.count(token) != 0) return true;
          token.clear();
        }
      }
    }
    pos = end;
  }
  // Iterator-style loops over tracked names.
  for (const auto& name : names) {
    for (const char* member : {".begin(", ".cbegin(", ".rbegin("}) {
      const std::size_t at = code.find(name + member);
      if (at != std::string::npos &&
          (at == 0 || !is_ident_char(code[at - 1]))) {
        return true;
      }
    }
  }
  return false;
}

/// `new` used as a heap allocation: word `new` NOT followed by '('
/// (placement new constructs into caller-owned storage and is exactly
/// what the allocation-lean regions rely on).
bool has_heap_new(const std::string& code) {
  std::size_t pos = 0;
  while ((pos = code.find("new", pos)) != std::string::npos) {
    const std::size_t end = pos + 3;
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (left_ok && right_ok) {
      std::size_t j = end;
      while (j < code.size() && code[j] == ' ') ++j;
      if (j < code.size() && code[j] != '(') return true;
      if (j >= code.size()) return true;  // `new` at end of line
    }
    pos = end;
  }
  return false;
}

/// A container *declared by value* on this line: one of the owning
/// container templates with its argument list closed here, followed by
/// a declared name. `std::vector<T>& out` parameters and `*` locals
/// bind without allocating and pass; `std::vector<T> scratch;`
/// constructs (and, once filled, allocates) per entry into the region.
/// Names followed by '(' are treated as function declarations and
/// skipped — the same heuristic collect_unordered_names uses; multi-
/// line declarations are out of reach by design.
bool declares_container_by_value(const std::string& code) {
  for (const char* tmpl :
       {"vector", "deque", "basic_string", "map", "set", "list",
        "unordered_map", "unordered_set", "multimap", "multiset"}) {
    const std::size_t len = std::strlen(tmpl);
    std::size_t pos = 0;
    while ((pos = code.find(tmpl, pos)) != std::string::npos) {
      const std::size_t end = pos + len;
      const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
      if (!left_ok || end >= code.size() || code[end] != '<') {
        pos = end;
        continue;
      }
      int depth = 0;
      std::size_t i = end;
      for (; i < code.size(); ++i) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
      if (depth != 0) break;  // argument list continues on the next line
      while (i < code.size() && code[i] == ' ') ++i;
      std::string name;
      while (i < code.size() && is_ident_char(code[i])) {
        name.push_back(code[i++]);
      }
      while (i < code.size() && code[i] == ' ') ++i;
      if (!name.empty() && (i >= code.size() || code[i] != '(')) return true;
      pos = i;
    }
  }
  return false;
}

struct Directives {
  bool hotpath_begin = false;
  bool hotpath_end = false;
  bool lane_runner_begin = false;
  bool lane_runner_end = false;
  std::set<std::string> allowed;
};

/// Parse `sdslint:` directives out of a line's comment text. Only a
/// comment that *starts* with `sdslint:` is a directive — prose that
/// merely mentions one (doc headers, fixture descriptions quoting
/// `// sdslint: lane-runner`) must not open or close a region.
Directives parse_directives(const std::string& comment) {
  Directives d;
  std::size_t start = 0;
  while (start < comment.size() &&
         (comment[start] == ' ' || comment[start] == '\t')) {
    ++start;
  }
  std::size_t pos = comment.compare(start, 8, "sdslint:") == 0
                        ? start
                        : std::string::npos;
  if (pos != std::string::npos) {
    std::size_t i = pos + 8;
    while (i < comment.size() && comment[i] == ' ') ++i;
    // Longer spellings first: `hotpath-end` must not match the plain
    // `hotpath` prefix and begin a region instead of ending one.
    if (comment.compare(i, 13, "hotpath-begin") == 0) {
      d.hotpath_begin = true;
    } else if (comment.compare(i, 11, "hotpath-end") == 0) {
      d.hotpath_end = true;
    } else if (comment.compare(i, 11, "end-hotpath") == 0) {
      d.hotpath_end = true;
    } else if (comment.compare(i, 7, "hotpath") == 0) {
      d.hotpath_begin = true;
    } else if (comment.compare(i, 15, "end-lane-runner") == 0) {
      d.lane_runner_end = true;
    } else if (comment.compare(i, 11, "lane-runner") == 0) {
      d.lane_runner_begin = true;
    } else if (comment.compare(i, 6, "allow(") == 0) {
      i += 6;
      std::string rule;
      for (; i < comment.size() && comment[i] != ')'; ++i) {
        if (comment[i] == ',') {
          if (!rule.empty()) d.allowed.insert(rule);
          rule.clear();
        } else if (comment[i] != ' ') {
          rule.push_back(comment[i]);
        }
      }
      if (!rule.empty()) d.allowed.insert(rule);
    }
  }
  return d;
}

struct FileRules {
  bool sim = false;        // sim-wallclock/rand/sleep/thread
  bool fault = false;      // fault-wallclock/rand
  bool unordered = false;  // unordered-iter
  bool span = false;       // span-wallclock
};

/// Rule applicability from path components: any `sim` directory
/// component enables the determinism rules; `fault` enables the
/// fault-plan determinism rules (plan.h's contract); `sim` or `bench`
/// enables the iteration-order rule. hotpath-alloc applies everywhere.
FileRules classify(const fs::path& path) {
  FileRules rules;
  for (const auto& part : path) {
    const std::string comp = part.string();
    if (comp == "sim") rules.sim = rules.unordered = rules.span = true;
    if (comp == "fault") rules.fault = true;
    if (comp == "bench") rules.unordered = rules.span = true;
  }
  return rules;
}

void lint_file(const fs::path& path, std::vector<Finding>& findings) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "sdslint: cannot open %s\n", path.c_str());
    findings.push_back({path.string(), 0, "io", "cannot open file"});
    return;
  }
  const FileRules rules = classify(path);

  std::set<std::string> unordered_names;
  bool in_block_comment = false;
  // Regions nest: a helper with its own `hotpath` region may be spliced
  // into an enclosing one, and its `end-hotpath` must not terminate the
  // outer region. Each open begin remembers its line so a region left
  // open at EOF is reported where it started.
  std::vector<int> hotpath_stack;
  std::vector<int> lane_runner_stack;
  std::set<std::string> pending_allow;  // from a standalone comment line
  std::string line;
  std::string code;
  std::string comment;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    split_line(line, in_block_comment, code, comment);
    const Directives directives = parse_directives(comment);
    if (directives.hotpath_begin) hotpath_stack.push_back(lineno);
    if (directives.hotpath_end) {
      if (hotpath_stack.empty()) {
        findings.push_back({path.string(), lineno, "unbalanced-directive",
                            "`end-hotpath` without a matching `hotpath` "
                            "begin"});
      } else {
        hotpath_stack.pop_back();
      }
    }
    if (directives.lane_runner_begin) lane_runner_stack.push_back(lineno);
    if (directives.lane_runner_end) {
      if (lane_runner_stack.empty()) {
        findings.push_back({path.string(), lineno, "unbalanced-directive",
                            "`end-lane-runner` without a matching "
                            "`lane-runner` begin"});
      } else {
        lane_runner_stack.pop_back();
      }
    }
    const bool in_hotpath = !hotpath_stack.empty();
    const bool in_lane_runner = !lane_runner_stack.empty();

    const bool has_code =
        code.find_first_not_of(" \t") != std::string::npos;
    std::set<std::string> allowed = directives.allowed;
    if (has_code) {
      allowed.insert(pending_allow.begin(), pending_allow.end());
      pending_allow.clear();
    } else {
      // A standalone `// sdslint: allow(...)` comment covers the next
      // code line.
      pending_allow.insert(directives.allowed.begin(),
                           directives.allowed.end());
      continue;
    }

    std::vector<Finding> hits;
    const auto hit = [&](const char* rule, std::string msg) {
      hits.push_back({path.string(), lineno, rule, std::move(msg)});
    };

    if (rules.sim) {
      for (const char* clock :
           {"system_clock", "steady_clock", "high_resolution_clock",
            "gettimeofday", "clock_gettime", "localtime", "localtime_r",
            "gmtime"}) {
        if (find_word(code, clock) != std::string::npos) {
          hit("sim-wallclock",
              std::string(clock) +
                  " reads the wall clock; sim time must come from the "
                  "engine clock");
        }
      }
      if (find_word(code, "time", /*require_call=*/true) !=
          std::string::npos) {
        hit("sim-wallclock",
            "time() reads the wall clock; sim time must come from the "
            "engine clock");
      }
      for (const char* fn : {"rand", "srand", "rand_r", "random_device"}) {
        if (find_word(code, fn) != std::string::npos) {
          hit("sim-rand", std::string(fn) +
                              " is ambient randomness; use a seeded PRNG "
                              "from the experiment config");
        }
      }
      for (const char* fn :
           {"sleep_for", "sleep_until", "usleep", "nanosleep"}) {
        if (find_word(code, fn) != std::string::npos) {
          hit("sim-sleep", std::string(fn) +
                               " blocks on real time; schedule a simulated "
                               "delay on the engine instead");
        }
      }
      if (find_word(code, "sleep", /*require_call=*/true) !=
          std::string::npos) {
        hit("sim-sleep",
            "sleep() blocks on real time; schedule a simulated delay on "
            "the engine instead");
      }
      // Threads are allowed only inside `// sdslint: lane-runner`
      // regions — the lane runner's worker team (sim/parallel.cc) is
      // the simulator's one sanctioned thread-spawn site. Everywhere
      // else, event code must stay single-threaded.
      if (!in_lane_runner &&
          (has_qualified_word(code, "thread") ||
           has_qualified_word(code, "jthread") ||
           has_qualified_word(code, "async") ||
           find_word(code, "pthread_create") != std::string::npos)) {
        hit("sim-thread",
            "thread spawn in simulation code outside a lane-runner "
            "region; threads may only be spawned by the lane runner's "
            "worker team");
      }
    }

    // src/fault shares the simulator's determinism contract (see
    // fault/plan.h): every time is virtual Nanos from the run epoch and
    // every draw derives from FaultPlan::seed, so a wall-clock read or
    // ambient randomness would break the bit-identical replay the plans
    // promise across lanes and between sim and runtime. Real-time
    // sleeps are deliberately NOT banned here: the runtime FaultDriver
    // side may pace itself, and a sleep is not a clock *read*.
    if (rules.fault) {
      for (const char* clock :
           {"system_clock", "steady_clock", "high_resolution_clock",
            "gettimeofday", "clock_gettime", "localtime", "localtime_r",
            "gmtime"}) {
        if (find_word(code, clock) != std::string::npos) {
          hit("fault-wallclock",
              std::string(clock) +
                  " reads the wall clock; fault timelines are virtual "
                  "Nanos from the run epoch");
        }
      }
      if (find_word(code, "time", /*require_call=*/true) !=
          std::string::npos) {
        hit("fault-wallclock",
            "time() reads the wall clock; fault timelines are virtual "
            "Nanos from the run epoch");
      }
      for (const char* fn : {"rand", "srand", "rand_r", "random_device"}) {
        if (find_word(code, fn) != std::string::npos) {
          hit("fault-rand",
              std::string(fn) +
                  " is ambient randomness; every draw must derive from "
                  "FaultPlan::seed");
        }
      }
    }

    // Span stamps must carry virtual time: a trace whose sim-side spans
    // mix engine Nanos with wall-clock reads is unstitchable (and breaks
    // replay determinism). Applies to bench too, where wall clocks are
    // otherwise legal for throughput measurement — just not on the same
    // statement that stamps a span.
    if (rules.span) {
      const bool stamps_span =
          find_word(code, "Span") != std::string::npos ||
          find_word(code, "FlightRecord") != std::string::npos ||
          code.find("span.start") != std::string::npos ||
          code.find("span.duration") != std::string::npos;
      if (stamps_span) {
        for (const char* clock :
             {"system_clock", "steady_clock", "high_resolution_clock",
              "gettimeofday", "clock_gettime"}) {
          if (find_word(code, clock) != std::string::npos) {
            hit("span-wallclock",
                std::string(clock) +
                    " stamps a span with wall-clock time; span times must "
                    "come from the virtual clock");
          }
        }
        if (find_word(code, "time", /*require_call=*/true) !=
            std::string::npos) {
          hit("span-wallclock",
              "time() stamps a span with wall-clock time; span times must "
              "come from the virtual clock");
        }
      }
    }

    if (rules.unordered) {
      collect_unordered_names(code, unordered_names);
      if (iterates_unordered(code, unordered_names)) {
        hit("unordered-iter",
            "iterating an unordered container; hash order is "
            "implementation-defined and leaks into emitted output — use a "
            "sorted container or sort a key vector first");
      }
    }

    if (in_hotpath) {
      if (has_heap_new(code)) {
        hit("hotpath-alloc",
            "heap `new` in a hot-path region (placement new is allowed)");
      }
      for (const char* fn : {"make_unique", "make_shared"}) {
        if (find_word(code, fn) != std::string::npos) {
          hit("hotpath-alloc",
              std::string(fn) + " allocates in a hot-path region");
        }
      }
      if (has_qualified_word(code, "function")) {
        hit("hotpath-alloc",
            "std::function construction may allocate in a hot-path "
            "region; use SmallFn or a template parameter");
      }
      for (const char* fn :
           {"malloc", "calloc", "realloc", "strdup", "aligned_alloc"}) {
        if (find_word(code, fn, /*require_call=*/true) !=
            std::string::npos) {
          hit("hotpath-alloc",
              std::string(fn) + " allocates in a hot-path region");
        }
      }
      for (const char* fn : {"to_string", "stringstream", "ostringstream"}) {
        if (find_word(code, fn) != std::string::npos) {
          hit("hotpath-alloc",
              std::string(fn) +
                  " builds a heap string in a hot-path region; format "
                  "outside the region or into a caller-owned buffer");
        }
      }
      if (declares_container_by_value(code)) {
        hit("hotpath-alloc",
            "owning container declared by value in a hot-path region; "
            "reuse a buffer sized outside the region (references and "
            "pointers are fine)");
      }
    }

    for (auto& finding : hits) {
      if (allowed.count(finding.rule) != 0) continue;
      findings.push_back(std::move(finding));
    }
  }

  for (const int begin_line : hotpath_stack) {
    findings.push_back({path.string(), begin_line, "unbalanced-directive",
                        "`hotpath` region opened here is never closed "
                        "(missing `end-hotpath`)"});
  }
  for (const int begin_line : lane_runner_stack) {
    findings.push_back({path.string(), begin_line, "unbalanced-directive",
                        "`lane-runner` region opened here is never closed "
                        "(missing `end-lane-runner`)"});
  }
}

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

void collect_files(const fs::path& root, std::vector<fs::path>& files) {
  std::error_code ec;
  if (fs::is_directory(root, ec)) {
    for (fs::recursive_directory_iterator it(root, ec), end; it != end;
         it.increment(ec)) {
      if (!ec && it->is_regular_file() && lintable(it->path())) {
        files.push_back(it->path());
      }
    }
    return;
  }
  files.push_back(root);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> files;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : kRules) {
        std::printf("%-15s [%s] %s\n", rule.name, rule.scope, rule.summary);
      }
      return 0;
    }
    if (arg == "--quiet" || arg == "-q") {
      quiet = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: sdslint [--quiet] [--list-rules] <file|dir>...\n"
          "Determinism and hot-path lint; see --list-rules. Suppress a\n"
          "finding with `// sdslint: allow(<rule>)` on (or just above)\n"
          "the offending line.\n");
      return 0;
    }
    collect_files(arg, files);
  }
  if (files.empty()) {
    std::fprintf(stderr, "sdslint: no input files (see --help)\n");
    return 2;
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) lint_file(file, findings);
  for (const auto& finding : findings) {
    std::fprintf(stderr, "%s:%d: error: [%s] %s\n", finding.file.c_str(),
                 finding.line, finding.rule.c_str(), finding.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "sdslint: %zu issue(s) across %zu file(s)\n",
                 findings.size(), files.size());
    return 1;
  }
  if (!quiet) {
    std::printf("sdslint: OK (%zu files)\n", files.size());
  }
  return 0;
}
