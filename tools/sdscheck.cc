// sdscheck — whole-repo concurrency & architecture conformance analyzer.
//
// Complements sdslint (determinism invariants) with structural checks that
// span files:
//
//   layering        The module include graph must follow the layer DAG
//                   declared in tools/layering.toml: a module may include
//                   only strictly-lower-ranked modules (or itself), and
//                   banned pairs (sim -> transport/runtime) are rejected
//                   transitively through the file-level include closure.
//   lockgraph       Every sds::Mutex declared under src/ must be stamped
//                   with a LockRank; acquisition edges inferred from
//                   nested MutexLock scopes and SDS_ACQUIRED_AFTER
//                   annotations must be rank-increasing and acyclic.
//   annotations     A mutable field declared after the first Mutex member
//                   of a mutex-owning class must carry SDS_GUARDED_BY (or
//                   be of an inherently-synchronized type, or carry an
//                   explicit `// sdscheck: allow(unguarded-field)` marker
//                   with a comment saying which thread owns it).
//   protocoverage   Every proto:: message kind (a struct with a kType
//                   member in src/proto/messages.h) must have an
//                   encode/decode round-trip test under tests/.
//
// Like sdslint, this is a token/line-level analyzer, not a compiler
// plugin: it errs toward simplicity and explainability. Statements it
// cannot resolve statically (mutexes reached through `.`/`->`, multi-line
// declarations of locals) are skipped, not guessed at — the runtime
// LockOrderValidator (common/lock_rank.h) backstops what the static pass
// cannot see. Suppressions are explicit and grep-able:
//
//   Mutex mu_;                        // sdscheck: allow(lock-rank)
//   std::unordered_map<...> conns_;   // sdscheck: allow(unguarded-field)
//
// A marker may also sit on a standalone comment line immediately above
// the declaration it excuses.
//
// Usage:
//   sdscheck [--pass=layering|lockgraph|annotations|protocoverage] ...
//            [--config=tools/layering.toml] <repo-root>
//
// With no --pass flags all four passes run. Exit codes: 0 clean,
// 1 findings, 2 usage/configuration error.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

// ---------------------------------------------------------------------------
// Lexical helpers (sdslint idiom).
// ---------------------------------------------------------------------------

[[nodiscard]] bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Splits `line` into code and comment, blanking string/char literal
/// contents in the code part (the quotes survive, the payload does not) so
/// braces and keywords inside literals cannot confuse the scanners.
/// `in_block_comment` carries /* ... */ state across lines.
void split_line(const std::string& line, bool& in_block_comment,
                std::string& code, std::string& comment) {
  code.clear();
  comment.clear();
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_block_comment) {
      comment += c;
      if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        comment += '/';
        ++i;
        in_block_comment = false;
      }
      continue;
    }
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
        code += '"';
      }
      continue;
    }
    if (in_char) {
      if (c == '\\') {
        ++i;
      } else if (c == '\'') {
        in_char = false;
        code += '\'';
      }
      continue;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      comment.append(line, i + 2, std::string::npos);
      break;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      code += '"';
      continue;
    }
    if (c == '\'') {
      in_char = true;
      code += '\'';
      continue;
    }
    code += c;
  }
}

/// Position just past `word` when it occurs as a whole identifier in
/// `code` at or after `from`; npos otherwise.
[[nodiscard]] std::size_t find_word(const std::string& code,
                                    const std::string& word,
                                    std::size_t from = 0) {
  std::size_t pos = from;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (left_ok && right_ok) return pos;
    pos = end;
  }
  return std::string::npos;
}

[[nodiscard]] std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

[[nodiscard]] std::size_t skip_spaces(const std::string& s, std::size_t pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Reads the identifier starting at `pos` (empty if none).
[[nodiscard]] std::string read_ident(const std::string& s, std::size_t pos) {
  std::size_t end = pos;
  while (end < s.size() && is_ident_char(s[end])) ++end;
  if (end == pos || std::isdigit(static_cast<unsigned char>(s[pos])) != 0) {
    return {};
  }
  return s.substr(pos, end - pos);
}

/// True when `comment` carries `sdscheck: allow(<rule>)`.
[[nodiscard]] bool has_allow(const std::string& comment,
                             const std::string& rule) {
  const std::string needle = "sdscheck: allow(" + rule + ")";
  return comment.find(needle) != std::string::npos;
}

[[nodiscard]] std::vector<std::string> read_lines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Source files under `dir`, sorted for deterministic diagnostics.
[[nodiscard]] std::vector<fs::path> collect_sources(const fs::path& dir) {
  std::vector<fs::path> out;
  if (!fs::exists(dir)) return out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Pass 1: layering.
// ---------------------------------------------------------------------------

struct LayeringConfig {
  std::map<std::string, int> ranks;
  /// module -> modules it must never include, even transitively.
  std::map<std::string, std::set<std::string>> banned;
  /// (src-relative file, included module) pairs excused by the config.
  std::set<std::pair<std::string, std::string>> allow;
};

/// Minimal TOML subset: [section] headers, `key = value` lines, `#`
/// comments. Values are integers ([ranks]) or quoted strings.
[[nodiscard]] bool load_layering_config(const fs::path& path,
                                        LayeringConfig& config,
                                        std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path.string();
    return false;
  }
  std::string section;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[' && line.back() == ']') {
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      error = path.string() + ":" + std::to_string(lineno) +
              ": expected `key = value`";
      return false;
    }
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.size() >= 2 && key.front() == '"' && key.back() == '"') {
      key = key.substr(1, key.size() - 2);
    }
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    if (section == "ranks") {
      config.ranks[key] = std::atoi(value.c_str());
    } else if (section == "banned") {
      std::size_t start = 0;
      while (start <= value.size()) {
        const std::size_t comma = value.find(',', start);
        const std::string target =
            trim(value.substr(start, comma == std::string::npos
                                         ? std::string::npos
                                         : comma - start));
        if (!target.empty()) config.banned[key].insert(target);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (section == "allow") {
      config.allow.emplace(key, value);
    } else {
      error = path.string() + ":" + std::to_string(lineno) +
              ": unknown section [" + section + "]";
      return false;
    }
  }
  if (config.ranks.empty()) {
    error = path.string() + ": [ranks] section is empty";
    return false;
  }
  return true;
}

/// First path component ("" for files directly under src/).
[[nodiscard]] std::string module_of(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

/// Quoted `#include "..."` targets, parsed from the raw line (split_line
/// blanks string contents, which is exactly the part we need here).
[[nodiscard]] std::optional<std::string> parse_include(
    const std::string& raw) {
  std::size_t pos = skip_spaces(raw, 0);
  if (pos >= raw.size() || raw[pos] != '#') return std::nullopt;
  pos = skip_spaces(raw, pos + 1);
  if (raw.compare(pos, 7, "include") != 0) return std::nullopt;
  pos = skip_spaces(raw, pos + 7);
  if (pos >= raw.size() || raw[pos] != '"') return std::nullopt;
  const std::size_t end = raw.find('"', pos + 1);
  if (end == std::string::npos) return std::nullopt;
  return raw.substr(pos + 1, end - pos - 1);
}

void run_layering(const fs::path& root, const LayeringConfig& config,
                  std::vector<Finding>& findings) {
  const fs::path src = root / "src";
  // file (src-relative) -> quoted includes that resolve inside src/.
  std::map<std::string, std::vector<std::pair<std::string, int>>> includes;
  for (const fs::path& path : collect_sources(src)) {
    const std::string rel = fs::relative(path, src).generic_string();
    const std::string mod = module_of(rel);
    const std::vector<std::string> lines = read_lines(path);
    auto& edges = includes[rel];
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const auto inc = parse_include(lines[i]);
      if (!inc) continue;
      edges.emplace_back(*inc, static_cast<int>(i + 1));
      const std::string inc_mod = module_of(*inc);
      if (inc_mod.empty()) continue;  // same-directory or umbrella include
      if (mod.empty()) continue;      // files directly under src/ are exempt
      if (config.allow.count({rel, inc_mod}) != 0) continue;
      const auto from_rank = config.ranks.find(mod);
      const auto to_rank = config.ranks.find(inc_mod);
      if (from_rank == config.ranks.end()) {
        findings.push_back({path.string(), static_cast<int>(i + 1),
                            "layering",
                            "module '" + mod +
                                "' is not declared in [ranks] of "
                                "tools/layering.toml"});
        continue;
      }
      if (to_rank == config.ranks.end()) {
        findings.push_back({path.string(), static_cast<int>(i + 1),
                            "layering",
                            "included module '" + inc_mod +
                                "' is not declared in [ranks] of "
                                "tools/layering.toml"});
        continue;
      }
      const auto banned = config.banned.find(mod);
      const bool is_banned =
          banned != config.banned.end() && banned->second.count(inc_mod) != 0;
      if (is_banned) {
        findings.push_back(
            {path.string(), static_cast<int>(i + 1), "layering",
             "module '" + mod + "' must not include '" + inc_mod +
                 "' (banned pair in tools/layering.toml)"});
        continue;
      }
      if (inc_mod != mod && to_rank->second >= from_rank->second) {
        findings.push_back(
            {path.string(), static_cast<int>(i + 1), "layering",
             "module '" + mod + "' (rank " +
                 std::to_string(from_rank->second) + ") may not include '" +
                 inc_mod + "' (rank " + std::to_string(to_rank->second) +
                 "); only strictly lower layers are visible "
                 "(tools/layering.toml)"});
      }
    }
  }

  // Banned pairs hold transitively: sim must not reach transport even
  // through an intermediate module whose direct edges are all legal
  // (fault sits below sim and above transport, so sim -> fault ->
  // transport would otherwise smuggle the dependency in).
  for (const auto& [mod, targets] : config.banned) {
    for (const auto& [rel, _] : includes) {
      if (module_of(rel) != mod) continue;
      // BFS over the file-level include closure, remembering parents so
      // the diagnostic can print the chain.
      std::map<std::string, std::string> parent;
      std::deque<std::string> queue;
      parent[rel] = "";
      queue.push_back(rel);
      while (!queue.empty()) {
        const std::string cur = queue.front();
        queue.pop_front();
        const auto it = includes.find(cur);
        if (it == includes.end()) continue;
        for (const auto& [inc, line] : it->second) {
          if (includes.count(inc) == 0) continue;  // not a src/ file
          if (parent.count(inc) != 0) continue;
          parent[inc] = cur;
          const std::string inc_mod = module_of(inc);
          if (targets.count(inc_mod) != 0) {
            // Direct banned includes are reported by the per-include
            // check above; the closure only reports smuggled routes.
            if (cur == rel) continue;
            std::string chain = inc;
            std::string first_hop = cur;
            for (std::string hop = cur; !hop.empty(); hop = parent[hop]) {
              chain = hop + " -> " + chain;
              if (!parent[hop].empty()) first_hop = hop;
            }
            int hop_line = 1;
            for (const auto& [target, l] : includes[rel]) {
              if (target == first_hop) hop_line = l;
            }
            findings.push_back(
                {(root / "src" / rel).string(), hop_line, "layering",
                 "module '" + mod + "' reaches banned module '" + inc_mod +
                     "' transitively: " + chain});
          } else {
            queue.push_back(inc);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Shared scanner for the lockgraph and annotations passes.
// ---------------------------------------------------------------------------

struct MutexDecl {
  std::string file;
  int line = 0;
  std::string class_name;  // innermost class, "" for locals/file scope
  std::string name;
  std::string rank;  // "kFoo", "" when unranked
  bool allowed_unranked = false;
  std::vector<std::string> acquired_after;  // raw mutex names
};

struct LockEdge {
  std::string file;
  int line = 0;
  std::string from;  // raw mutex name at the acquisition site
  std::string to;
};

struct FileScan {
  std::vector<MutexDecl> mutexes;
  std::vector<LockEdge> edges;
};

struct ClassFrame {
  std::string name;
  int body_depth = 0;
  bool has_mutex = false;
};

struct HeldLock {
  int decl_depth = 0;
  std::string name;
};

/// One forward scan of `lines` extracting mutex declarations, nested
/// MutexLock acquisition edges, and unguarded-field findings. The class
/// stack and brace depth are tracked character-accurately over the
/// comment-stripped code.
void scan_concurrency(const std::string& display_path,
                      const std::vector<std::string>& lines,
                      bool check_annotations, FileScan& scan,
                      std::vector<Finding>& findings) {
  bool in_block_comment = false;
  int depth = 0;
  std::vector<ClassFrame> classes;
  std::vector<HeldLock> held;

  // class/struct parsing state.
  bool pending_struct = false;
  bool collecting_name = true;
  bool skip_next_struct = false;  // set by a preceding `enum`
  std::string candidate;

  // Member-statement accumulation for the annotations pass.
  std::string stmt;
  int stmt_line = 0;
  bool stmt_allow = false;
  bool after_close = false;  // just returned to member depth from a brace

  // A standalone `// sdscheck: allow(...)` comment excuses the next
  // declaration (sdslint's pending-allow idiom).
  bool pending_allow_rank = false;
  bool pending_allow_field = false;

  auto innermost = [&]() -> ClassFrame* {
    return classes.empty() ? nullptr : &classes.back();
  };

  auto flush_stmt = [&](bool allow_field) {
    std::string body = trim(stmt);
    stmt.clear();
    ClassFrame* frame = innermost();
    if (!check_annotations || frame == nullptr || body.empty()) return;
    for (const char* spec : {"public:", "private:", "protected:"}) {
      const std::size_t pos = body.find(spec);
      if (pos != std::string::npos) {
        body = trim(body.substr(pos + std::strlen(spec)));
      }
    }
    if (body.empty()) return;
    if (!frame->has_mutex) return;  // fields above the mutex: not checked
    if (allow_field) return;
    // Skip everything that is not a mutable data member.
    static const char* kSkipPrefixes[] = {
        "using ",    "typedef ", "friend ",   "static ",  "enum ",
        "class ",    "struct ",  "template ", "explicit ", "virtual ",
        "operator",  "return ",  "const ",    "constexpr ", "~",
        "SDS_",      "#"};
    for (const char* prefix : kSkipPrefixes) {
      if (body.rfind(prefix, 0) == 0) return;
    }
    if (body.find("SDS_GUARDED_BY") != std::string::npos ||
        body.find("SDS_PT_GUARDED_BY") != std::string::npos) {
      return;
    }
    // A '(' without a guard annotation is a method/functor declaration —
    // skipped, documented as permissive.
    if (body.find('(') != std::string::npos) return;
    // Inherently-synchronized or immutable-by-idiom types.
    static const char* kExemptTypes[] = {
        "Mutex",       "CondVar",     "Queue<",        "std::thread",
        "std::atomic", "WaitGroup",   "CounterBlock",  "ThreadPool",
        "std::condition_variable",    "telemetry::"};
    for (const char* exempt : kExemptTypes) {
      if (body.find(exempt) != std::string::npos) return;
    }
    // Member name: last identifier before the initializer (if any).
    std::size_t end = body.size();
    for (const char stop : {'=', '{', ';'}) {
      const std::size_t pos = body.find(stop);
      if (pos != std::string::npos && pos < end) end = pos;
    }
    std::string head = trim(body.substr(0, end));
    std::size_t name_end = head.size();
    while (name_end > 0 && !is_ident_char(head[name_end - 1])) --name_end;
    std::size_t name_begin = name_end;
    while (name_begin > 0 && is_ident_char(head[name_begin - 1])) {
      --name_begin;
    }
    const std::string name = head.substr(name_begin, name_end - name_begin);
    if (name.empty() || name_begin == 0) return;  // no `type name` shape
    findings.push_back(
        {display_path, stmt_line, "unguarded-field",
         "field '" + frame->name + "::" + name +
             "' is mutable state in a mutex-owning class but has no "
             "SDS_GUARDED_BY annotation (mark the owning thread with "
             "`// sdscheck: allow(unguarded-field)` if it is "
             "single-threaded by design)"});
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int lineno = static_cast<int>(i + 1);
    std::string code;
    std::string comment;
    split_line(lines[i], in_block_comment, code, comment);

    const bool line_allow_rank = has_allow(comment, "lock-rank");
    const bool line_allow_field = has_allow(comment, "unguarded-field");
    if (line_allow_field) stmt_allow = true;

    // Mutex declarations are single-line in practice; parses the rest of
    // the line from the `Mutex` token. Called from the character walk so
    // the brace depth and class stack are current at the token.
    auto parse_mutex_decl = [&](std::size_t token_end) {
      std::size_t cursor = skip_spaces(code, token_end);
      const std::string name = read_ident(code, cursor);
      if (name.empty()) return;
      cursor = skip_spaces(code, cursor + name.size());
      // `Mutex foo(...)` is a constructor/function, not a declaration.
      if (cursor < code.size() && code[cursor] == '(') return;
      MutexDecl decl;
      decl.file = display_path;
      decl.line = lineno;
      decl.name = name;
      ClassFrame* frame = innermost();
      if (frame != nullptr && depth == frame->body_depth) {
        // Only direct members belong to the class; deeper declarations
        // are function locals inside an inline method.
        decl.class_name = frame->name;
        frame->has_mutex = true;
      }
      const std::size_t rank_pos = code.find("LockRank::", cursor);
      if (rank_pos != std::string::npos) {
        decl.rank = read_ident(code, rank_pos + 10);
      }
      decl.allowed_unranked = line_allow_rank || pending_allow_rank;
      const std::size_t after_pos = code.find("SDS_ACQUIRED_AFTER(", cursor);
      if (after_pos != std::string::npos) {
        const std::size_t open = after_pos + 19;
        const std::size_t close_pos = code.find(')', open);
        if (close_pos != std::string::npos) {
          std::string args = code.substr(open, close_pos - open);
          std::size_t start = 0;
          while (start <= args.size()) {
            const std::size_t comma = args.find(',', start);
            const std::string arg =
                trim(args.substr(start, comma == std::string::npos
                                            ? std::string::npos
                                            : comma - start));
            if (!arg.empty()) decl.acquired_after.push_back(arg);
            if (comma == std::string::npos) break;
            start = comma + 1;
          }
        }
      }
      scan.mutexes.push_back(std::move(decl));
    };

    // MutexLock acquisitions: record an edge from every lock still held
    // in an enclosing scope to the newly acquired one. Also called from
    // the character walk, so `depth` is the acquisition's scope depth.
    auto parse_mutex_lock = [&](std::size_t token_end) {
      std::size_t cursor = skip_spaces(code, token_end);
      const std::string var = read_ident(code, cursor);
      if (var.empty()) return;
      cursor = skip_spaces(code, cursor + var.size());
      if (cursor >= code.size() ||
          (code[cursor] != '(' && code[cursor] != '{')) {
        return;
      }
      const char close = code[cursor] == '(' ? ')' : '}';
      const std::size_t end = code.find(close, cursor + 1);
      if (end == std::string::npos) return;
      std::string arg = code.substr(cursor + 1, end - cursor - 1);
      const std::size_t comma = arg.find(',');
      if (comma != std::string::npos) arg = arg.substr(0, comma);
      arg = trim(arg);
      // Member access through another object cannot be resolved at the
      // token level; the runtime validator covers those sites.
      const bool resolvable = !arg.empty() &&
                              arg.find('.') == std::string::npos &&
                              arg.find("->") == std::string::npos &&
                              arg.find('[') == std::string::npos &&
                              arg.find('(') == std::string::npos;
      if (!resolvable) arg.clear();
      for (const HeldLock& outer : held) {
        if (!outer.name.empty() && !arg.empty() && outer.name != arg) {
          scan.edges.push_back({display_path, lineno, outer.name, arg});
        }
      }
      held.push_back({depth, arg});
    };

    // Character walk: brace depth, class stack, statement accumulation.
    for (std::size_t c = 0; c < code.size(); ++c) {
      const char ch = code[c];
      ClassFrame* frame = innermost();
      const bool at_member_depth =
          frame != nullptr && depth == frame->body_depth;

      if (pending_struct) {
        if (is_ident_char(ch)) {
          if (collecting_name) {
            const std::string ident = read_ident(code, c);
            if (!ident.empty()) {
              candidate = ident;
              c += ident.size() - 1;
              continue;
            }
          }
        } else if (ch == '(') {
          // Attribute macro (SDS_CAPABILITY(...)): its argument is not
          // the class name. Skip to the matching ')'.
          int parens = 1;
          std::size_t j = c + 1;
          while (j < code.size() && parens > 0) {
            if (code[j] == '(') ++parens;
            if (code[j] == ')') --parens;
            ++j;
          }
          candidate.clear();
          c = j - 1;
          continue;
        } else if (ch == ':') {
          collecting_name = false;
          continue;
        } else if (ch == '<' || ch == '>' || ch == ',' || ch == ';') {
          // Template parameter list or forward declaration.
          pending_struct = false;
          collecting_name = true;
        } else if (ch == '{') {
          ++depth;
          classes.push_back(
              {candidate.empty() ? "<anonymous>" : candidate, depth, false});
          pending_struct = false;
          collecting_name = true;
          stmt.clear();
          continue;
        }
      }

      if (is_ident_char(ch)) {
        const std::string ident = read_ident(code, c);
        if (ident == "enum") {
          skip_next_struct = true;
        } else if (ident == "class" || ident == "struct" ||
                   ident == "union") {
          if (skip_next_struct) {
            skip_next_struct = false;
          } else {
            pending_struct = true;
            collecting_name = true;
            candidate.clear();
          }
          if (at_member_depth) {
            stmt += ident;
            stmt += ' ';
          }
          if (!ident.empty()) c += ident.size() - 1;
          continue;
        } else if (ident == "Mutex") {
          parse_mutex_decl(c + ident.size());
        } else if (ident == "MutexLock") {
          parse_mutex_lock(c + ident.size());
        } else if (!ident.empty() && ident != "enum") {
          skip_next_struct = skip_next_struct && ident == "class";
        }
        if (at_member_depth) {
          if (after_close) {
            stmt.clear();
            after_close = false;
          }
          if (stmt.empty()) {
            stmt_line = lineno;
            stmt_allow = line_allow_field || pending_allow_field;
          }
          stmt += ident;
        }
        if (!ident.empty()) c += ident.size() - 1;
        continue;
      }

      switch (ch) {
        case '{':
          ++depth;
          break;
        case '}': {
          --depth;
          while (!held.empty() && held.back().decl_depth > depth) {
            held.pop_back();
          }
          ClassFrame* top = innermost();
          if (top != nullptr && depth < top->body_depth) {
            classes.pop_back();
            stmt.clear();
            after_close = false;
          } else if (top != nullptr && depth == top->body_depth) {
            // Either a brace initializer (a `;` follows — keep the
            // statement) or an inline method body (discard).
            after_close = true;
          }
          break;
        }
        case ';':
          if (at_member_depth) {
            after_close = false;
            flush_stmt(stmt_allow || line_allow_field);
            stmt_allow = false;
          }
          break;
        default:
          if (at_member_depth && !std::isspace(static_cast<unsigned char>(ch))) {
            if (after_close) {
              stmt.clear();
              after_close = false;
            }
            if (stmt.empty()) {
              stmt_line = lineno;
              stmt_allow = line_allow_field || pending_allow_field;
            }
          }
          if (at_member_depth && !stmt.empty()) stmt += ch;
          break;
      }
    }

    // Standalone allow comments excuse the next declaration only.
    if (trim(code).empty() && !comment.empty()) {
      if (line_allow_rank) pending_allow_rank = true;
      if (line_allow_field) pending_allow_field = true;
    } else if (!trim(code).empty()) {
      pending_allow_rank = false;
      pending_allow_field = false;
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: lockgraph.
// ---------------------------------------------------------------------------

/// LockRank values parsed from src/common/lock_rank.h (`kFoo = N,`).
[[nodiscard]] std::map<std::string, int> load_rank_values(
    const fs::path& root) {
  std::map<std::string, int> values;
  const fs::path header = root / "src" / "common" / "lock_rank.h";
  if (!fs::exists(header)) return values;
  bool in_enum = false;
  bool in_block_comment = false;
  for (const std::string& raw : read_lines(header)) {
    std::string code;
    std::string comment;
    split_line(raw, in_block_comment, code, comment);
    if (code.find("enum class LockRank") != std::string::npos) {
      in_enum = true;
      continue;
    }
    if (!in_enum) continue;
    if (code.find("};") != std::string::npos) break;
    const std::size_t k = code.find('k');
    const std::size_t eq = code.find('=');
    if (k == std::string::npos || eq == std::string::npos || eq < k) continue;
    const std::string name = trim(code.substr(k, eq - k));
    const std::string value = trim(code.substr(eq + 1));
    if (!name.empty() && name[0] == 'k') {
      values[name] = std::atoi(value.c_str());
    }
  }
  return values;
}

void run_lockgraph(const fs::path& root, std::vector<Finding>& findings) {
  const std::map<std::string, int> rank_values = load_rank_values(root);

  struct GraphEdge {
    std::string file;
    int line = 0;
  };
  // node ("Class::member" or "file-scope member") -> successor -> site.
  std::map<std::string, std::map<std::string, GraphEdge>> graph;
  std::map<std::string, const MutexDecl*> nodes;
  std::vector<FileScan> scans;
  std::vector<Finding> sink;  // annotation findings are not this pass's job

  const std::vector<fs::path> sources = collect_sources(root / "src");
  scans.reserve(sources.size());
  for (const fs::path& path : sources) {
    FileScan scan;
    scan_concurrency(path.string(), read_lines(path), false, scan, sink);
    scans.push_back(std::move(scan));
  }

  std::vector<MutexDecl> all_decls;
  for (const FileScan& scan : scans) {
    for (const MutexDecl& decl : scan.mutexes) {
      all_decls.push_back(decl);
    }
  }

  auto node_id = [](const MutexDecl& decl) {
    if (!decl.class_name.empty()) return decl.class_name + "::" + decl.name;
    return fs::path(decl.file).filename().string() + "::" + decl.name;
  };
  auto rank_of = [&](const MutexDecl& decl) -> std::optional<int> {
    if (decl.rank.empty()) return std::nullopt;
    const auto it = rank_values.find(decl.rank);
    if (it == rank_values.end()) return std::nullopt;
    return it->second;
  };

  for (const MutexDecl& decl : all_decls) {
    nodes.emplace(node_id(decl), &decl);
    if (decl.rank.empty() && !decl.allowed_unranked) {
      findings.push_back(
          {decl.file, decl.line, "lock-rank",
           "mutex '" + node_id(decl) +
               "' has no LockRank; stamp it at the declaration "
               "(`Mutex mu_{LockRank::k...};`, see common/lock_rank.h) or "
               "mark it `// sdscheck: allow(lock-rank)`"});
    } else if (!decl.rank.empty() && !rank_values.empty() &&
               rank_values.count(decl.rank) == 0) {
      findings.push_back({decl.file, decl.line, "lock-rank",
                          "mutex '" + node_id(decl) + "' names LockRank::" +
                              decl.rank +
                              ", which is not declared in "
                              "common/lock_rank.h"});
    }
  }

  // Per-file name resolution: a raw mutex name resolves only when the
  // file declares exactly one mutex with that name.
  for (const FileScan& scan : scans) {
    std::map<std::string, const MutexDecl*> by_name;
    std::set<std::string> ambiguous;
    for (const MutexDecl& decl : scan.mutexes) {
      if (!by_name.emplace(decl.name, &decl).second) {
        ambiguous.insert(decl.name);
      }
    }
    auto resolve = [&](const std::string& name) -> const MutexDecl* {
      if (ambiguous.count(name) != 0) return nullptr;
      const auto it = by_name.find(name);
      return it == by_name.end() ? nullptr : it->second;
    };
    auto add_edge = [&](const MutexDecl& from, const MutexDecl& to,
                        const std::string& file, int line) {
      const std::string from_id = node_id(from);
      const std::string to_id = node_id(to);
      if (from_id == to_id) return;
      graph[from_id].emplace(to_id, GraphEdge{file, line});
      const auto fr = rank_of(from);
      const auto tr = rank_of(to);
      if (fr && tr && *tr <= *fr) {
        findings.push_back(
            {file, line, "lock-order",
             "acquires '" + to_id + "' (LockRank::" + to.rank + " = " +
                 std::to_string(*tr) + ") while holding '" + from_id +
                 "' (LockRank::" + from.rank + " = " + std::to_string(*fr) +
                 "); acquisition ranks must be strictly increasing "
                 "(see common/lock_rank.h)"});
      }
    };
    for (const LockEdge& edge : scan.edges) {
      const MutexDecl* from = resolve(edge.from);
      const MutexDecl* to = resolve(edge.to);
      if (from == nullptr || to == nullptr) continue;
      add_edge(*from, *to, edge.file, edge.line);
    }
    for (const MutexDecl& decl : scan.mutexes) {
      for (const std::string& before : decl.acquired_after) {
        const MutexDecl* from = resolve(before);
        if (from == nullptr) continue;
        add_edge(*from, decl, decl.file, decl.line);
      }
    }
  }

  // Cycle detection (iterative DFS, colors). Each cycle is reported once,
  // anchored at the declaration of its lexically-first node.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back(node);
    for (const auto& [next, site] : graph[node]) {
      if (color[next] == 1) {
        // Found a back edge: the cycle is stack[from next .. end] + next.
        auto begin =
            std::find(stack.begin(), stack.end(), next);
        std::vector<std::string> cycle(begin, stack.end());
        cycle.push_back(next);
        // Canonical key so the same cycle is not reported from every
        // entry point.
        std::vector<std::string> sorted(cycle.begin(), cycle.end() - 1);
        std::sort(sorted.begin(), sorted.end());
        std::string key;
        for (const std::string& n : sorted) key += n + "|";
        if (reported.insert(key).second) {
          std::string path;
          for (const std::string& n : cycle) {
            if (!path.empty()) path += " -> ";
            path += n;
          }
          const auto anchor = nodes.find(sorted.front());
          const std::string file =
              anchor != nodes.end() ? anchor->second->file : site.file;
          const int line =
              anchor != nodes.end() ? anchor->second->line : site.line;
          findings.push_back(
              {file, line, "lock-cycle",
               "lock-graph cycle: " + path +
                   " (an execution interleaving these acquisitions "
                   "deadlocks; break the cycle or restructure to "
                   "copy-then-call-out)"});
        }
      } else if (color[next] == 0) {
        dfs(next);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, _] : graph) {
    if (color[node] == 0) dfs(node);
  }
}

// ---------------------------------------------------------------------------
// Pass 3: annotations.
// ---------------------------------------------------------------------------

void run_annotations(const fs::path& root, std::vector<Finding>& findings) {
  for (const fs::path& path : collect_sources(root / "src")) {
    FileScan scan;
    scan_concurrency(path.string(), read_lines(path), true, scan, findings);
  }
}

// ---------------------------------------------------------------------------
// Pass 4: protocoverage.
// ---------------------------------------------------------------------------

void run_protocoverage(const fs::path& root, std::vector<Finding>& findings) {
  const fs::path messages = root / "src" / "proto" / "messages.h";
  if (!fs::exists(messages)) return;  // fixture roots without a proto layer

  struct Message {
    std::string struct_name;
    std::string kind;  // enumerator, e.g. "kError"
    int line = 0;
  };
  std::vector<Message> kinds;
  {
    bool in_block_comment = false;
    std::string current_struct;
    const std::vector<std::string> lines = read_lines(messages);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::string code;
      std::string comment;
      split_line(lines[i], in_block_comment, code, comment);
      const std::size_t struct_pos = find_word(code, "struct");
      if (struct_pos != std::string::npos) {
        const std::string name =
            read_ident(code, skip_spaces(code, struct_pos + 6));
        if (!name.empty()) current_struct = name;
      }
      const std::size_t ktype = code.find("MessageType kType");
      if (ktype == std::string::npos || current_struct.empty()) continue;
      const std::size_t value_pos = code.find("MessageType::", ktype);
      if (value_pos == std::string::npos) continue;
      const std::string kind = read_ident(code, value_pos + 13);
      if (kind.empty()) continue;
      kinds.push_back({current_struct, kind, static_cast<int>(i + 1)});
    }
  }

  // A message kind counts as round-trip covered when some test file
  // decodes it (`from_frame<Name>`) and also encodes (`to_frame`).
  std::set<std::string> covered;
  for (const fs::path& path : collect_sources(root / "tests")) {
    bool in_block_comment = false;
    bool encodes = false;
    std::set<std::string> decoded;
    for (const std::string& raw : read_lines(path)) {
      std::string code;
      std::string comment;
      split_line(raw, in_block_comment, code, comment);
      if (find_word(code, "to_frame") != std::string::npos) encodes = true;
      std::size_t pos = 0;
      while ((pos = code.find("from_frame<", pos)) != std::string::npos) {
        pos += 11;
        std::string name = read_ident(code, skip_spaces(code, pos));
        // Strip a namespace qualifier (from_frame<proto::Foo>).
        std::size_t cursor = skip_spaces(code, pos) + name.size();
        while (cursor + 1 < code.size() && code[cursor] == ':' &&
               code[cursor + 1] == ':') {
          name = read_ident(code, cursor + 2);
          cursor += 2 + name.size();
        }
        if (!name.empty()) decoded.insert(name);
      }
    }
    if (encodes) {
      covered.insert(decoded.begin(), decoded.end());
    }
  }

  for (const Message& msg : kinds) {
    if (covered.count(msg.struct_name) != 0) continue;
    findings.push_back(
        {messages.string(), msg.line, "proto-coverage",
         "proto::" + msg.struct_name + " (MessageType::" + msg.kind +
             ") has no encode/decode round-trip test under tests/ "
             "(expected a test calling to_frame and from_frame<" +
             msg.struct_name + ">)"});
  }
}

// ---------------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------------

void print_help() {
  std::printf(
      "usage: sdscheck [--pass=NAME]... [--config=FILE] <repo-root>\n"
      "\n"
      "Whole-repo conformance passes (all run when no --pass is given):\n"
      "  layering        module include graph vs tools/layering.toml\n"
      "  lockgraph       LockRank stamps, acquisition order, cycles\n"
      "  annotations     SDS_GUARDED_BY coverage in mutex-owning classes\n"
      "  protocoverage   proto message round-trip test coverage\n"
      "\n"
      "Exit: 0 clean, 1 findings, 2 usage/configuration error.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::set<std::string> passes;
  std::string config_path;
  std::string root_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return 0;
    }
    if (arg.rfind("--pass=", 0) == 0) {
      const std::string pass = arg.substr(7);
      if (pass != "layering" && pass != "lockgraph" &&
          pass != "annotations" && pass != "protocoverage") {
        std::fprintf(stderr, "sdscheck: unknown pass '%s'\n", pass.c_str());
        return 2;
      }
      passes.insert(pass);
      continue;
    }
    if (arg.rfind("--config=", 0) == 0) {
      config_path = arg.substr(9);
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "sdscheck: unknown flag '%s' (see --help)\n",
                   arg.c_str());
      return 2;
    }
    if (!root_arg.empty()) {
      std::fprintf(stderr, "sdscheck: exactly one repo root expected\n");
      return 2;
    }
    root_arg = arg;
  }
  if (root_arg.empty()) {
    std::fprintf(stderr, "sdscheck: no repo root given (see --help)\n");
    return 2;
  }
  const fs::path root = root_arg;
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "sdscheck: %s has no src/ directory\n",
                 root_arg.c_str());
    return 2;
  }
  if (passes.empty()) {
    passes = {"layering", "lockgraph", "annotations", "protocoverage"};
  }

  std::vector<Finding> findings;
  if (passes.count("layering") != 0) {
    LayeringConfig config;
    std::string error;
    const fs::path path =
        config_path.empty() ? root / "tools" / "layering.toml"
                            : fs::path(config_path);
    if (!load_layering_config(path, config, error)) {
      std::fprintf(stderr, "sdscheck: %s\n", error.c_str());
      return 2;
    }
    run_layering(root, config, findings);
  }
  if (passes.count("lockgraph") != 0) run_lockgraph(root, findings);
  if (passes.count("annotations") != 0) run_annotations(root, findings);
  if (passes.count("protocoverage") != 0) run_protocoverage(root, findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  for (const Finding& finding : findings) {
    std::fprintf(stderr, "%s:%d: error: [%s] %s\n", finding.file.c_str(),
                 finding.line, finding.rule.c_str(),
                 finding.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "sdscheck: %zu issue(s)\n", findings.size());
    return 1;
  }
  std::string names;
  for (const std::string& pass : passes) {
    if (!names.empty()) names += ", ";
    names += pass;
  }
  std::printf("sdscheck: OK (%s)\n", names.c_str());
  return 0;
}
