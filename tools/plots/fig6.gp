# Fig. 6 — flat vs hierarchical (single aggregator) at 2,500 nodes.
# Usage:
#   SDSCALE_BENCH_OUT=out ./build/bench/fig6_flat_vs_hier
#   gnuplot -e "datadir='out'" tools/plots/fig6.gp   # -> out/fig6.png
if (!exists("datadir")) datadir = "."
set terminal pngcairo size 600,500 font "sans,11"
set output datadir."/fig6.png"
set title "Flat vs hierarchical (1 aggregator), 2,500 nodes"
set xlabel ""
set ylabel "latency (ms)"
set style data histograms
set style histogram rowstacked
set style fill solid 0.8 border -1
set boxwidth 0.5
set xtics ("flat" 0, "hierarchical" 1)
set key top left
plot datadir."/fig6_flat_vs_hier.dat" using 3 title "collect", \
     '' using 4 title "compute", \
     '' using 5 title "enforce", \
     '' using 0:6 with points pt 7 ps 1.5 lc rgb "black" title "paper total"
