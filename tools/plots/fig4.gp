# Fig. 4 — flat design control-cycle latency, stacked phase breakdown.
# Usage:
#   SDSCALE_BENCH_OUT=out ./build/bench/fig4_flat_scaling
#   gnuplot -e "datadir='out'" tools/plots/fig4.gp   # -> out/fig4.png
if (!exists("datadir")) datadir = "."
set terminal pngcairo size 800,500 font "sans,11"
set output datadir."/fig4.png"
set title "Flat design: average control-cycle latency vs compute nodes"
set xlabel "compute nodes"
set ylabel "latency (ms)"
set style data histograms
set style histogram rowstacked
set style fill solid 0.8 border -1
set boxwidth 0.6
set key top left
plot datadir."/fig4_flat_scaling.dat" using 3:xtic(1) title "collect", \
     '' using 4 title "compute", \
     '' using 5 title "enforce", \
     '' using 0:6 with points pt 7 ps 1.5 lc rgb "black" title "paper total"
