# Fig. 5 — hierarchical design at 10,000 nodes vs aggregator count.
# Usage:
#   SDSCALE_BENCH_OUT=out ./build/bench/fig5_hier_aggregators
#   gnuplot -e "datadir='out'" tools/plots/fig5.gp   # -> out/fig5.png
if (!exists("datadir")) datadir = "."
set terminal pngcairo size 800,500 font "sans,11"
set output datadir."/fig5.png"
set title "Hierarchical design: 10,000 nodes, varying aggregator controllers"
set xlabel "aggregator controllers"
set ylabel "latency (ms)"
set style data histograms
set style histogram rowstacked
set style fill solid 0.8 border -1
set boxwidth 0.6
set key top right
plot datadir."/fig5_hier_aggregators.dat" using 3:xtic(1) title "collect", \
     '' using 4 title "compute", \
     '' using 5 title "enforce", \
     '' using 0:6 with points pt 7 ps 1.5 lc rgb "black" title "paper total"
