// Calibration harness: prints the model's output for the paper's headline
// configurations next to the paper's numbers. Used once to fix the
// FronteraProfile constants; kept for reproducibility.
#include <cstdio>

#include "sim/experiment.h"

using namespace sds;

namespace {

void report(const char* label, const sim::ExperimentResult& r, double paper_ms) {
  std::printf(
      "%-28s cycles=%5llu total=%7.2fms (paper %6.1f) collect=%6.2f "
      "compute=%6.2f enforce=%6.2f\n",
      label, static_cast<unsigned long long>(r.cycles),
      r.stats.mean_total_ms(), paper_ms, r.stats.mean_collect_ms(),
      r.stats.mean_compute_ms(), r.stats.mean_enforce_ms());
  std::printf(
      "%-28s   global: cpu=%5.2f%% mem=%5.2fGB tx=%5.2fMB/s rx=%5.2fMB/s\n",
      "", r.global.cpu_percent, r.global.memory_gb, r.global.transmitted_mbps,
      r.global.received_mbps);
  if (r.aggregator.memory_gb > 0) {
    std::printf(
        "%-28s   agg:    cpu=%5.2f%% mem=%5.2fGB tx=%5.2fMB/s rx=%5.2fMB/s\n",
        "", r.aggregator.cpu_percent, r.aggregator.memory_gb,
        r.aggregator.transmitted_mbps, r.aggregator.received_mbps);
  }
}

}  // namespace

int main() {
  // Fig. 4 / Table II — flat design.
  const double paper_flat[] = {1.11, 8.5, 20.0, 40.40};  // 500/1250 interpolated
  const std::size_t flat_nodes[] = {50, 500, 1250, 2500};
  for (int i = 0; i < 4; ++i) {
    sim::ExperimentConfig cfg;
    cfg.num_stages = flat_nodes[i];
    cfg.duration = seconds(5);
    auto r = sim::run_experiment(cfg);
    if (!r.is_ok()) {
      std::printf("flat %zu: %s\n", flat_nodes[i], r.status().to_string().c_str());
      continue;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "flat N=%zu", flat_nodes[i]);
    report(label, r.value(), paper_flat[i]);
  }

  // Fig. 5 / Table III — hierarchical, 10k nodes.
  const double paper_hier[] = {103, 95, 79, 69};
  const std::size_t aggs[] = {4, 5, 10, 20};
  for (int i = 0; i < 4; ++i) {
    sim::ExperimentConfig cfg;
    cfg.num_stages = 10000;
    cfg.num_aggregators = aggs[i];
    cfg.duration = seconds(5);
    auto r = sim::run_experiment(cfg);
    if (!r.is_ok()) {
      std::printf("hier A=%zu: %s\n", aggs[i], r.status().to_string().c_str());
      continue;
    }
    char label[64];
    std::snprintf(label, sizeof(label), "hier N=10000 A=%zu", aggs[i]);
    report(label, r.value(), paper_hier[i]);
  }

  // Fig. 6 / Table IV — 2,500 nodes, flat vs hierarchical w/ 1 aggregator.
  {
    sim::ExperimentConfig cfg;
    cfg.num_stages = 2500;
    cfg.num_aggregators = 1;
    cfg.duration = seconds(5);
    auto r = sim::run_experiment(cfg);
    if (r.is_ok()) report("hier N=2500 A=1", r.value(), 53.0);
  }
  return 0;
}
