#!/usr/bin/env bash
# tools/check.sh — run the full correctness matrix in one command.
#
#   default   plain build + full ctest (the tier-1 gate)
#   asan      -DSDS_ASAN=ON build + full ctest (ASan + LSan)
#   ubsan     -DSDS_UBSAN=ON build + full ctest
#   tsan      -DSDS_TSAN=ON build + `ctest -L 'tsan|resilience'` (the
#             threaded suites plus the fault-injection suites)
#   tracing   `ctest -L tracing` on the default tree (wire trace
#             trailer, span attribution, flight recorder, introspection,
#             trace_report)
#   million   `ctest -L million` on the default tree: perf_million
#             --quick with its regression gates live (incremental-PSFA
#             speedup, delta-frame compression, ablation bit-identity)
#   lint      sdslint over the tree + the `lint` ctest label
#   conformance  sdscheck's four passes (layering, lockgraph,
#             annotations, protocoverage) against fixtures and the real
#             tree, plus the runtime lock-order validator tests, in a
#             -DSDS_LOCK_ORDER=ON tree (`ctest -L conformance`)
#   tidy      clang-tidy with the checked-in .clang-tidy (skipped when
#             clang-tidy is not installed)
#   tsa       Clang -Wthread-safety build (skipped when clang++ is not
#             installed)
#   format    clang-format --dry-run verification (only with --format or
#             `format`; skipped when clang-format is not installed)
#
# Usage:
#   tools/check.sh                # default asan ubsan tsan lint tidy tsa
#   tools/check.sh asan lint      # just those stages
#   tools/check.sh --format       # everything plus format verification
#   tools/check.sh --quick        # default + lint + conformance only
#
# Build trees live under build-check/<stage> so repeat runs are
# incremental. Any stage failing fails the script; stages whose
# toolchain is absent are reported as SKIPPED, not failed.

set -u

cd "$(dirname "$0")/.."
ROOT="$(pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

STAGES=()
WITH_FORMAT=0
for arg in "$@"; do
  case "$arg" in
    --format) WITH_FORMAT=1 ;;
    --quick) STAGES+=(default lint conformance) ;;
    --help|-h)
      sed -n '2,35p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    format) WITH_FORMAT=1 ;;
    default|asan|ubsan|tsan|tracing|million|lint|conformance|tidy|tsa)
      STAGES+=("$arg") ;;
    *)
      echo "check.sh: unknown stage '$arg' (see --help)" >&2
      exit 2
      ;;
  esac
done
if [ "${#STAGES[@]}" -eq 0 ]; then
  STAGES=(default asan ubsan tsan tracing million lint conformance tidy tsa)
fi
if [ "$WITH_FORMAT" -eq 1 ]; then
  STAGES+=(format)
fi

PASSED=()
FAILED=()
SKIPPED=()

note() { printf '\n==> %s\n' "$*"; }

configure_and_build() {
  # configure_and_build <tree> [extra cmake args...]
  local tree="$1"
  shift
  cmake -B "$tree" -S "$ROOT" "$@" >"$tree.configure.log" 2>&1 \
    || { cat "$tree.configure.log"; return 1; }
  cmake --build "$tree" -j "$JOBS" >"$tree.build.log" 2>&1 \
    || { tail -n 50 "$tree.build.log"; return 1; }
}

run_stage() {
  local stage="$1"
  case "$stage" in
    default)
      note "default build + full ctest"
      configure_and_build build-check/default || return 1
      ctest --test-dir build-check/default -j "$JOBS" --output-on-failure \
        || return 1
      ;;
    asan)
      note "ASan+LSan build + full ctest"
      configure_and_build build-check/asan -DSDS_ASAN=ON || return 1
      LSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/lsan.supp" \
        ctest --test-dir build-check/asan -j "$JOBS" --output-on-failure \
        || return 1
      ;;
    ubsan)
      note "UBSan build + full ctest"
      configure_and_build build-check/ubsan -DSDS_UBSAN=ON || return 1
      UBSAN_OPTIONS="print_stacktrace=1" \
        ctest --test-dir build-check/ubsan -j "$JOBS" --output-on-failure \
        || return 1
      ;;
    tsan)
      note "TSan build + ctest -L 'tsan|resilience'"
      configure_and_build build-check/tsan -DSDS_TSAN=ON || return 1
      TSAN_OPTIONS="suppressions=$ROOT/tools/sanitizers/tsan.supp" \
        ctest --test-dir build-check/tsan -L 'tsan|resilience' -j "$JOBS" \
        --output-on-failure || return 1
      ;;
    tracing)
      note "causal-tracing suites: ctest -L tracing"
      configure_and_build build-check/default || return 1
      ctest --test-dir build-check/default -L tracing -j "$JOBS" \
        --output-on-failure || return 1
      ;;
    million)
      note "million-stage fast-path gates: ctest -L million"
      configure_and_build build-check/default || return 1
      ctest --test-dir build-check/default -L million -j "$JOBS" \
        --output-on-failure || return 1
      ;;
    lint)
      note "sdslint + ctest -L lint"
      configure_and_build build-check/default || return 1
      ctest --test-dir build-check/default -L lint -j "$JOBS" \
        --output-on-failure || return 1
      ;;
    conformance)
      note "sdscheck + lock-order validator: ctest -L conformance"
      # Its own tree so the runtime validator is compiled in; the
      # sdscheck static passes themselves are build-type-agnostic.
      configure_and_build build-check/conformance -DSDS_LOCK_ORDER=ON \
        || return 1
      ctest --test-dir build-check/conformance -L conformance -j "$JOBS" \
        --output-on-failure || return 1
      ;;
    tidy)
      if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed — skipping"
        return 3
      fi
      note "clang-tidy (.clang-tidy, warnings-as-errors)"
      configure_and_build build-check/default \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON || return 1
      # Headers are covered via HeaderFilterRegex from including TUs.
      find src tools bench apps examples -name '*.cc' -print0 \
        | xargs -0 -P "$JOBS" -n 8 clang-tidy \
            -p build-check/default --quiet || return 1
      ;;
    tsa)
      if ! command -v clang++ >/dev/null 2>&1; then
        echo "clang++ not installed — skipping thread-safety analysis"
        return 3
      fi
      note "Clang thread-safety analysis build (-Wthread-safety -Werror)"
      configure_and_build build-check/tsa \
        -DCMAKE_CXX_COMPILER=clang++ -DSDS_THREAD_SAFETY=ON || return 1
      ;;
    format)
      if ! command -v clang-format >/dev/null 2>&1; then
        echo "clang-format not installed — skipping format verification"
        return 3
      fi
      note "clang-format --dry-run (verification only, never rewrites)"
      find src tools bench apps examples tests \
          \( -name '*.h' -o -name '*.cc' \) -not -path '*/fixtures/*' \
          -print0 \
        | xargs -0 clang-format --dry-run --Werror || return 1
      ;;
  esac
}

for stage in "${STAGES[@]}"; do
  run_stage "$stage"
  rc=$?
  case "$rc" in
    0) PASSED+=("$stage") ;;
    3) SKIPPED+=("$stage") ;;
    *) FAILED+=("$stage") ;;
  esac
done

printf '\n================ check.sh summary ================\n'
[ "${#PASSED[@]}" -gt 0 ] && echo "  passed : ${PASSED[*]}"
[ "${#SKIPPED[@]}" -gt 0 ] && echo "  skipped: ${SKIPPED[*]} (toolchain not installed)"
[ "${#FAILED[@]}" -gt 0 ] && echo "  FAILED : ${FAILED[*]}"
echo "=================================================="
[ "${#FAILED[@]}" -eq 0 ]
