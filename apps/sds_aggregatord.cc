// sds_aggregatord — middle-tier aggregator daemon of the hierarchical
// design. Accepts stage registrations, serves the global controller's
// collect/enforce cycles, pre-aggregates metrics upward.
//
//   sds_aggregatord --listen=0.0.0.0:7100 --upstream=ctrl:7000 --id=0
//
// Flags:
//   --listen=HOST:PORT   bind address              (default 0.0.0.0:7100)
//   --upstream=HOST:PORT global controller address (required)
//   --id=N               aggregator ControllerId   (default 0)
//   --max-connections=N  per-endpoint cap          (default 2500)
//   --report-ms=N        resource report interval  (default 10000)
//   --telemetry-out=DIR  export JSONL/Prometheus snapshots + trace to DIR
//   --telemetry-period-ms=N  telemetry snapshot period (default 1000)
//   --introspect-port=N    serve live /metrics, /cycles and /flight over
//                          HTTP on 127.0.0.1:N (0 = ephemeral port)
#include <thread>

#include "apps/daemon_common.h"
#include "runtime/aggregator_server.h"
#include "transport/tcp.h"

using namespace sds;

namespace {

constexpr const char* kUsage =
    "usage: sds_aggregatord --upstream=HOST:PORT [--listen=HOST:PORT]\n"
    "                       [--id=N] [--max-connections=N] [--report-ms=N]\n"
    "                       [--telemetry-out=DIR] [--telemetry-period-ms=N]\n"
    "                       [--introspect-port=N]\n";

}  // namespace

int main(int argc, char** argv) {
  apps::install_signal_handlers();
  const Config flags = apps::parse_flags(argc, argv, kUsage);

  const auto upstream = flags.get("upstream");
  if (!upstream) {
    std::fprintf(stderr, "--upstream is required\n%s", kUsage);
    return 2;
  }

  transport::TcpNetwork network;
  runtime::AggregatorServerOptions options;
  options.id =
      ControllerId{static_cast<std::uint32_t>(flags.get_int_or("id", 0))};
  options.upstream_address = *upstream;
  options.telemetry = apps::telemetry_flags(flags, "aggregator");
  runtime::AggregatorServer server(network,
                                   flags.get_or("listen", "0.0.0.0:7100"),
                                   options);

  transport::EndpointOptions endpoint_options;
  endpoint_options.max_connections =
      static_cast<std::size_t>(flags.get_int_or("max-connections", 2500));
  if (const Status started = server.start(endpoint_options); !started.is_ok()) {
    std::fprintf(stderr, "start: %s\n", started.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr, "sds_aggregatord %u listening on %s, upstream %s\n",
               options.id.value(), server.address().c_str(), upstream->c_str());

  const auto report_interval = millis(flags.get_int_or("report-ms", 10'000));
  monitor::ResourceMonitor mon({server.endpoint()});
  auto last_report = mon.sample();

  while (!apps::g_stop.load()) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(report_interval.count()));
    if (apps::g_stop.load()) break;
    last_report = apps::report_usage(mon, last_report, "sds_aggregatord");
    std::fprintf(stderr, "[sds_aggregatord] stages=%zu cycles_served=%llu\n",
                 server.registered_stages(),
                 static_cast<unsigned long long>(server.cycles_served()));
  }

  std::fprintf(stderr, "sds_aggregatord: shutting down\n");
  server.shutdown();
  return 0;
}
