// sds_staged — data-plane stage host daemon. Hosts N virtual stages (the
// paper runs 50 per compute node), registers each over its own
// connection with the configured controller(s), and answers collect /
// enforce traffic. Demand is synthetic (constant or bursty) or replayed
// from a recorded trace CSV.
//
//   sds_staged --controllers=ctrl:7000 --stages=50 --first-stage=0
//              --job-size=50 --data-demand=1000 --meta-demand=100
//   sds_staged --controllers=agg0:7100,agg1:7100 --trace=run.csv
//
// Flags:
//   --listen=HOST:PORT     bind address               (default 0.0.0.0:0)
//   --controllers=A[,B..]  controller addresses in failover order (required)
//   --stages=N             virtual stages to host     (default 50)
//   --first-stage=N        id of the first stage      (default 0)
//   --job-size=N           stages per job             (default 50)
//   --data-demand=R        constant data ops/s        (default 1000)
//   --meta-demand=R        constant metadata ops/s    (default 100)
//   --burst-ms=N           if > 0: on/off bursts of this length
//   --trace=PATH           replay demand from a trace CSV instead
//   --report-ms=N          resource report interval   (default 10000)
//   --telemetry-out=DIR    export JSONL/Prometheus snapshots + trace to DIR
//   --telemetry-period-ms=N  telemetry snapshot period (default 1000)
//   --introspect-port=N    serve live /metrics, /cycles and /flight over
//                          HTTP on 127.0.0.1:N (0 = ephemeral port)
#include <thread>

#include "apps/daemon_common.h"
#include "runtime/stage_host.h"
#include "transport/tcp.h"
#include "workload/generators.h"
#include "workload/trace.h"

using namespace sds;

namespace {

constexpr const char* kUsage =
    "usage: sds_staged --controllers=HOST:PORT[,HOST:PORT...]\n"
    "                  [--listen=HOST:PORT] [--stages=N] [--first-stage=N]\n"
    "                  [--job-size=N] [--data-demand=R] [--meta-demand=R]\n"
    "                  [--burst-ms=N] [--trace=PATH] [--report-ms=N]\n"
    "                  [--telemetry-out=DIR] [--telemetry-period-ms=N]\n"
    "                  [--introspect-port=N]\n";

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = std::min(text.find(',', pos), text.size());
    if (comma > pos) out.push_back(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  apps::install_signal_handlers();
  const Config flags = apps::parse_flags(argc, argv, kUsage);

  runtime::StageHostOptions options;
  options.controller_addresses = split_csv(flags.get_or("controllers", ""));
  if (options.controller_addresses.empty()) {
    std::fprintf(stderr, "--controllers is required\n%s", kUsage);
    return 2;
  }
  options.telemetry = apps::telemetry_flags(flags, "stage_host");

  workload::DemandTrace trace;
  bool use_trace = false;
  if (const auto path = flags.get("trace")) {
    auto loaded = workload::DemandTrace::load(*path);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "trace: %s\n", loaded.status().to_string().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
    use_trace = true;
  }

  transport::TcpNetwork network;
  runtime::StageHost host(network, flags.get_or("listen", "0.0.0.0:0"),
                          options);
  if (const Status started = host.start(); !started.is_ok()) {
    std::fprintf(stderr, "start: %s\n", started.to_string().c_str());
    return 1;
  }

  const auto num_stages =
      static_cast<std::uint32_t>(flags.get_int_or("stages", 50));
  const auto first_stage =
      static_cast<std::uint32_t>(flags.get_int_or("first-stage", 0));
  const auto job_size =
      static_cast<std::uint32_t>(std::max<std::int64_t>(1, flags.get_int_or("job-size", 50)));
  const double data_rate = flags.get_double_or("data-demand", 1000.0);
  const double meta_rate = flags.get_double_or("meta-demand", 100.0);
  const auto burst = millis(flags.get_int_or("burst-ms", 0));

  for (std::uint32_t i = 0; i < num_stages; ++i) {
    const StageId stage_id{first_stage + i};
    proto::StageInfo info;
    info.stage_id = stage_id;
    info.node_id = NodeId{first_stage + i};
    info.job_id = JobId{(first_stage + i) / job_size};
    info.hostname = flags.get_or("listen", "0.0.0.0:0");

    stage::DemandFn data;
    stage::DemandFn meta;
    if (use_trace) {
      data = trace.demand_for(stage_id, stage::Dimension::kData);
      meta = trace.demand_for(stage_id, stage::Dimension::kMeta);
    } else if (burst > Nanos{0}) {
      const auto burst_ms = static_cast<std::int64_t>(to_millis(burst));
      const Nanos phase =
          millis((stage_id.value() * 137) % (2 * burst_ms));
      data = workload::bursty(data_rate, 0.0, burst, burst, phase);
      meta = workload::bursty(meta_rate, 0.0, burst, burst, phase);
    } else {
      data = workload::constant(data_rate);
      meta = workload::constant(meta_rate);
    }
    if (const Status added =
            host.add_stage(std::move(info), std::move(data), std::move(meta));
        !added.is_ok()) {
      std::fprintf(stderr, "add_stage: %s\n", added.to_string().c_str());
      return 1;
    }
  }

  if (const Status registered = host.register_all(); !registered.is_ok()) {
    std::fprintf(stderr, "register: %s\n", registered.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "sds_staged: %u stages [%u, %u) registered with %s%s\n",
               num_stages, first_stage, first_stage + num_stages,
               options.controller_addresses.front().c_str(),
               use_trace ? " (trace replay)" : "");

  const auto report_interval = millis(flags.get_int_or("report-ms", 10'000));
  monitor::ResourceMonitor mon({host.endpoint()});
  auto last_report = mon.sample();
  while (!apps::g_stop.load()) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(report_interval.count()));
    if (apps::g_stop.load()) break;
    last_report = apps::report_usage(mon, last_report, "sds_staged");
    std::fprintf(stderr, "[sds_staged] collects_answered=%llu\n",
                 static_cast<unsigned long long>(host.collects_answered()));
  }

  std::fprintf(stderr, "sds_staged: shutting down\n");
  host.shutdown();
  return 0;
}
