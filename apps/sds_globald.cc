// sds_globald — the global SDS controller daemon.
//
// Binds a TCP endpoint, accepts stage and aggregator registrations, and
// runs the collect → PSFA → enforce control loop until SIGINT/SIGTERM.
//
//   sds_globald --listen=0.0.0.0:7000 --policy=/etc/sdscale/policy.conf
//               --period-ms=1000 --max-connections=2500
//
// Flags:
//   --listen=HOST:PORT     bind address               (default 0.0.0.0:7000)
//   --policy=PATH          PolicySpec file            (optional)
//   --period-ms=N          control period; 0 = stress (default 1000)
//   --cycles=N             stop after N cycles; 0 = run forever
//   --max-connections=N    per-endpoint cap; 0 = unlimited (default 2500)
//   --probe-ms=N           liveness probe interval; 0 = off (default 10000)
//   --report-ms=N          resource report interval   (default 10000)
//   --telemetry-out=DIR    export JSONL/Prometheus snapshots + trace to DIR
//   --telemetry-period-ms=N  telemetry snapshot period (default 1000)
//   --introspect-port=N    serve live /metrics, /cycles and /flight over
//                          HTTP on 127.0.0.1:N (0 = ephemeral port)
#include <memory>
#include <thread>

#include "apps/daemon_common.h"
#include "policy/spec.h"
#include "runtime/global_server.h"
#include "transport/tcp.h"

using namespace sds;

namespace {

constexpr const char* kUsage =
    "usage: sds_globald [--listen=HOST:PORT] [--policy=PATH] [--period-ms=N]\n"
    "                   [--cycles=N] [--max-connections=N] [--probe-ms=N]\n"
    "                   [--report-ms=N] [--telemetry-out=DIR]\n"
    "                   [--telemetry-period-ms=N] [--introspect-port=N]\n";

}  // namespace

int main(int argc, char** argv) {
  apps::install_signal_handlers();
  const Config flags = apps::parse_flags(argc, argv, kUsage);

  policy::PolicySpec spec;
  if (const auto path = flags.get("policy")) {
    auto parsed = policy::PolicySpec::from_file(*path);
    if (!parsed.is_ok()) {
      std::fprintf(stderr, "policy: %s\n", parsed.status().to_string().c_str());
      return 1;
    }
    spec = *parsed;
  }

  transport::TcpNetwork network;
  runtime::GlobalServerOptions options;
  options.core.budgets = {spec.data_budget, spec.meta_budget};
  options.phase_timeout = seconds(5);
  options.telemetry = apps::telemetry_flags(flags, "global");
  runtime::GlobalControllerServer server(
      network, flags.get_or("listen", "0.0.0.0:7000"), options,
      std::make_unique<policy::Psfa>(spec.psfa));

  transport::EndpointOptions endpoint_options;
  endpoint_options.max_connections =
      static_cast<std::size_t>(flags.get_int_or("max-connections", 2500));
  if (const Status started = server.start(endpoint_options); !started.is_ok()) {
    std::fprintf(stderr, "start: %s\n", started.to_string().c_str());
    return 1;
  }
  for (const auto& [job, weight] : spec.job_weights) {
    server.set_job_weight(JobId{job}, weight);
  }
  std::fprintf(stderr, "sds_globald listening on %s (budgets: data=%.0f "
               "meta=%.0f ops/s)\n",
               server.address().c_str(), spec.data_budget, spec.meta_budget);

  const auto period = millis(flags.get_int_or("period-ms", 1000));
  const auto probe_interval = millis(flags.get_int_or("probe-ms", 10'000));
  const auto report_interval = millis(flags.get_int_or("report-ms", 10'000));
  const auto max_cycles =
      static_cast<std::uint64_t>(flags.get_int_or("cycles", 0));

  monitor::ResourceMonitor mon({server.endpoint()});
  auto last_report = mon.sample();
  Nanos next_probe = SystemClock::instance().now() + probe_interval;
  Nanos next_report = SystemClock::instance().now() + report_interval;

  std::uint64_t cycles = 0;
  while (!apps::g_stop.load()) {
    const Nanos cycle_start = SystemClock::instance().now();
    if (server.registered_stages() > 0 || server.known_aggregators() > 0) {
      const auto breakdown = server.run_cycle();
      if (breakdown.is_ok()) {
        ++cycles;
      } else {
        std::fprintf(stderr, "cycle error: %s\n",
                     breakdown.status().to_string().c_str());
      }
      if (max_cycles != 0 && cycles >= max_cycles) break;
    }

    const Nanos now = SystemClock::instance().now();
    if (probe_interval > Nanos{0} && now >= next_probe) {
      next_probe = now + probe_interval;
      auto dead = server.probe_liveness(seconds(2));
      if (dead.is_ok()) {
        for (const auto& peer : *dead) {
          std::fprintf(stderr, "liveness: evicting silent peer (agg=%u)\n",
                       peer.aggregator.valid() ? peer.aggregator.value()
                                               : ~0u);
          server.evict(peer);
        }
      }
    }
    if (now >= next_report) {
      next_report = now + report_interval;
      last_report = apps::report_usage(mon, last_report, "sds_globald");
      std::fprintf(stderr,
                   "[sds_globald] cycles=%llu stages=%zu aggregators=%zu "
                   "mean=%.2fms\n",
                   static_cast<unsigned long long>(cycles),
                   server.registered_stages(), server.known_aggregators(),
                   server.stats().mean_total_ms());
    }

    // Hold the configured control period (stress mode when 0).
    const Nanos elapsed = SystemClock::instance().now() - cycle_start;
    if (period > elapsed) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds((period - elapsed).count()));
    }
  }

  std::fprintf(stderr, "sds_globald: %llu cycles, shutting down\n",
               static_cast<unsigned long long>(cycles));
  server.shutdown();
  return 0;
}
