// Shared plumbing for the sdscale daemons: flag parsing help, signal-based
// shutdown, and periodic resource reporting.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>

#include "common/config.h"
#include "monitor/resource_monitor.h"
#include "telemetry/reporter.h"

namespace sds::apps {

inline std::atomic<bool> g_stop{false};

inline void handle_signal(int) { g_stop.store(true); }

inline void install_signal_handlers() {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
}

/// Parse --key=value flags; prints `usage` and exits on --help.
inline Config parse_flags(int argc, char** argv, const char* usage) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr, "%s", usage);
      std::exit(0);
    }
  }
  Config config;
  const auto rest = config.apply_args(argc - 1, argv + 1);
  if (!rest.empty()) {
    std::fprintf(stderr, "unknown argument: %s\n%s", rest.front().c_str(),
                 usage);
    std::exit(2);
  }
  return config;
}

/// Map the shared observability flags onto TelemetryOptions:
///   --telemetry-out=DIR        enable export; JSONL/Prometheus snapshots
///                              (and a Chrome trace on shutdown) land in DIR
///   --telemetry-period-ms=N    snapshot period (default 1000)
inline telemetry::TelemetryOptions telemetry_flags(const Config& flags,
                                                   const char* component) {
  telemetry::TelemetryOptions options;
  options.component = component;
  if (const auto dir = flags.get("telemetry-out")) {
    options.enabled = true;
    options.out_dir = *dir;
    options.trace = true;
  }
  if (flags.get("introspect-port")) {
    options.enabled = true;
    options.introspect = true;
    options.introspect_port =
        static_cast<std::uint16_t>(flags.get_int_or("introspect-port", 0));
  }
  options.report_period = millis(flags.get_int_or("telemetry-period-ms", 1000));
  return options;
}

/// Print one REMORA-style usage line for the interval since `previous`
/// and return the fresh sample.
inline monitor::ResourceSample report_usage(const monitor::ResourceMonitor& mon,
                                            const monitor::ResourceSample& previous,
                                            const char* who) {
  const auto now = mon.sample();
  const auto usage = monitor::ResourceMonitor::usage_between(previous, now);
  std::fprintf(stderr,
               "[%s] cpu=%.2f%% rss=%.3fGB tx=%.2fMB/s rx=%.2fMB/s\n", who,
               usage.cpu_percent, usage.rss_gb, usage.transmitted_mbps,
               usage.received_mbps);
  return now;
}

}  // namespace sds::apps
